"""Per-user actors: determinism, path selection, ledger accounting."""

import numpy as np

from repro.edge.clock import VirtualTimeSource
from repro.edge.device import EdgeConfig
from repro.serve.actor import UserActor
from repro.serve.events import ServeWorkloadConfig, build_schedule


def make_actor(user_index=0, seed=3, **kwargs):
    return UserActor(
        user_id=f"user-{user_index:06d}",
        user_index=user_index,
        seed=seed,
        config=EdgeConfig(),
        time_source=VirtualTimeSource(),
        **kwargs,
    )


def user_events(schedule, user_index):
    return [
        schedule.event(seq)
        for seq in range(len(schedule))
        if schedule.event(seq).user_index == user_index
    ]


class TestDeterminism:
    def test_same_seed_same_outputs(self):
        schedule = build_schedule(ServeWorkloadConfig(n_users=3, n_events=90, seed=3))
        events = user_events(schedule, 1)
        out_a = [make_actor(1).handle_checkin(e.timestamp, e.x, e.y) for e in events]
        out_b = [make_actor(1).handle_checkin(e.timestamp, e.x, e.y) for e in events]
        assert out_a == out_b

    def test_different_users_draw_independent_streams(self):
        a = make_actor(0)
        b = make_actor(1)
        pa, _ = a.handle_checkin(0.0, 100.0, 100.0)
        pb, _ = b.handle_checkin(0.0, 100.0, 100.0)
        assert (pa.x, pa.y) != (pb.x, pb.y)


class TestServePaths:
    def test_nomadic_path_charges_the_accountant(self):
        actor = make_actor()
        _, path = actor.handle_checkin(0.0, 0.0, 0.0)
        assert path == "nomadic"
        assert actor.accountant.observations == 1

    def test_top_path_after_window_rollover(self):
        # Feed one location every day past the 90-day profile window: the
        # spot becomes a top location, gets pinned, and later check-ins
        # are served from the obfuscation table.
        actor = make_actor()
        day = 86_400.0
        paths = [
            actor.handle_checkin(i * day, 500.0, 500.0)[1] for i in range(100)
        ]
        assert paths[-1] == "top"
        assert actor.ledger.spends >= 1

    def test_reported_location_is_never_the_raw_point(self):
        actor = make_actor()
        reported, _ = actor.handle_checkin(0.0, 1234.5, 678.9)
        assert (reported.x, reported.y) != (1234.5, 678.9)

    def test_charged_since_reports_new_entries(self):
        actor = make_actor()
        day = 86_400.0
        before = len(actor.ledger.entries)
        for i in range(100):
            actor.handle_checkin(i * day, 500.0, 500.0)
        charged = actor.charged_since(before)
        assert len(charged) == actor.ledger.spends
        budget = actor.config.budget
        assert all(c == (budget.epsilon, budget.delta) for c in charged)

    def test_finalize_flushes_trailing_window(self):
        actor = make_actor()
        day = 86_400.0
        # Not enough elapsed time to roll the 90-day window even once.
        for i in range(20):
            actor.handle_checkin(i * day, 500.0, 500.0)
        assert actor.ledger.spends == 0
        actor.finalize()
        assert actor.ledger.spends >= 1


class TestLedgerCap:
    def test_cap_stops_pinning_not_serving(self):
        actor = make_actor(ledger_max_epsilon=0.5)  # below one pin's cost
        day = 86_400.0
        paths = [
            actor.handle_checkin(i * day, 500.0, 500.0)[1] for i in range(100)
        ]
        assert actor.ledger.spends == 0  # the pin was refused ...
        assert all(p == "nomadic" for p in paths)  # ... service continued
