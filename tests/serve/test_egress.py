"""Egress encoding: canonical bytes and the seq-ordered digest."""

from repro.geo.point import Point
from repro.serve.egress import (
    ServeResponse,
    build_response,
    encode_response,
    response_digest,
)


def response(seq=0, **overrides):
    fields = dict(
        seq=seq,
        user_index=3,
        path="top",
        reported_x=10.5,
        reported_y=-4.25,
        ads=(("campaign-000001", 2.5), ("campaign-000002", 1.0)),
        received=5,
    )
    fields.update(overrides)
    return ServeResponse(**fields)


class TestBuildResponse:
    def test_copies_reported_and_ads(self):
        class FakeAd:
            campaign_id = "campaign-000009"
            price_paid = 3.25

        built = build_response(
            seq=7,
            user_index=1,
            path="nomadic",
            reported=Point(1.0, 2.0),
            delivered=[FakeAd()],
            received=4,
        )
        assert built.reported_x == 1.0 and built.reported_y == 2.0
        assert built.ads == (("campaign-000009", 3.25),)
        assert built.received == 4


class TestEncoding:
    def test_deterministic_bytes(self):
        assert encode_response(response()) == encode_response(response())

    def test_every_field_is_load_bearing(self):
        base = encode_response(response())
        assert encode_response(response(seq=1)) != base
        assert encode_response(response(user_index=4)) != base
        assert encode_response(response(path="nomadic")) != base
        assert encode_response(response(reported_x=10.6)) != base
        assert encode_response(response(ads=())) != base
        assert encode_response(response(received=6)) != base

    def test_float_bit_pattern_precision(self):
        # Digest distinguishes doubles down to the last ulp.
        import math

        a = encode_response(response(reported_x=0.1))
        b = encode_response(response(reported_x=math.nextafter(0.1, 1.0)))
        assert a != b


class TestDigest:
    def test_order_independent_input_order(self):
        rs = [response(seq=i) for i in range(5)]
        assert response_digest(rs) == response_digest(list(reversed(rs)))

    def test_content_sensitive(self):
        rs = [response(seq=i) for i in range(5)]
        changed = rs[:4] + [response(seq=4, received=99)]
        assert response_digest(rs) != response_digest(changed)
