"""The serve workload: schedule determinism, routing, payload transport."""

import numpy as np
import pytest

from repro.serve.events import (
    EventSchedule,
    ServeWorkloadConfig,
    build_schedule,
    shard_of_user,
)


def small_config(**overrides):
    defaults = dict(n_users=6, n_events=60, n_campaigns=20, seed=7)
    defaults.update(overrides)
    return ServeWorkloadConfig(**defaults)


class TestConfigValidation:
    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            ServeWorkloadConfig(n_users=0)
        with pytest.raises(ValueError):
            ServeWorkloadConfig(n_events=0)
        with pytest.raises(ValueError):
            ServeWorkloadConfig(n_campaigns=-1)
        with pytest.raises(ValueError):
            ServeWorkloadConfig(days=0.0)


class TestShardRouting:
    def test_stable_and_in_range(self):
        for n_shards in (1, 2, 4, 7):
            for uid in ("user-000001", "user-000042", "abc"):
                shard = shard_of_user(uid, n_shards)
                assert 0 <= shard < n_shards
                assert shard == shard_of_user(uid, n_shards)

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_of_user("u", 0)

    def test_every_event_routed_to_its_users_shard(self):
        schedule = build_schedule(small_config())
        assignment = schedule.shard_assignment(3)
        for seq in range(len(schedule)):
            event = schedule.event(seq)
            assert assignment[seq] == shard_of_user(event.user_id, 3)


class TestBuildSchedule:
    def test_deterministic(self):
        a = build_schedule(small_config())
        b = build_schedule(small_config())
        assert a.user_ids == b.user_ids
        np.testing.assert_array_equal(a.user_index, b.user_index)
        np.testing.assert_array_equal(a.timestamps, b.timestamps)
        np.testing.assert_array_equal(a.xs, b.xs)
        np.testing.assert_array_equal(a.ys, b.ys)

    def test_seed_changes_schedule(self):
        a = build_schedule(small_config())
        b = build_schedule(small_config(seed=8))
        assert not np.array_equal(a.xs, b.xs)

    def test_event_count_and_split(self):
        schedule = build_schedule(small_config(n_users=7, n_events=60))
        assert len(schedule) == 60
        counts = np.bincount(schedule.user_index, minlength=7)
        # Even split: first 60 % 7 users carry one extra event.
        assert sorted(counts) == sorted([9, 9, 9, 9, 8, 8, 8])

    def test_timestamps_sorted(self):
        schedule = build_schedule(small_config())
        assert np.all(np.diff(schedule.timestamps) >= 0)

    def test_payload_round_trip(self):
        schedule = build_schedule(small_config())
        rebuilt = EventSchedule.from_payload(schedule.payload())
        assert rebuilt.user_ids == schedule.user_ids
        np.testing.assert_array_equal(rebuilt.xs, schedule.xs)
        assert rebuilt.event(3) == schedule.event(3)

    def test_event_materialization(self):
        schedule = build_schedule(small_config())
        event = schedule.event(0)
        assert event.seq == 0
        assert event.user_id == schedule.user_ids[event.user_index]
        assert event.point.x == event.x and event.point.y == event.y
