"""Bounded ingress queue semantics: shed, block, close, drain."""

import asyncio

import pytest

from repro.serve.ingress import BoundedIngressQueue, QueueClosedError


def run(coro):
    return asyncio.run(coro)


class TestOffer:
    def test_sheds_when_full_and_counts_drops(self):
        q = BoundedIngressQueue(capacity=2)
        assert q.offer(1) and q.offer(2)
        assert not q.offer(3)
        assert not q.offer(4)
        assert q.enqueued == 2
        assert q.dropped == 2
        assert len(q) == 2

    def test_high_water_tracks_max_depth(self):
        q = BoundedIngressQueue(capacity=8)
        for i in range(5):
            q.offer(i)
        assert q.high_water == 5

    def test_offer_after_close_raises(self):
        q = BoundedIngressQueue(capacity=2)
        q.close()
        with pytest.raises(QueueClosedError):
            q.offer(1)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BoundedIngressQueue(capacity=0)


class TestPutGetBatch:
    def test_put_blocks_until_space(self):
        async def scenario():
            q = BoundedIngressQueue(capacity=1)
            await q.put(1)
            waiter = asyncio.ensure_future(q.put(2))
            await asyncio.sleep(0)
            assert not waiter.done()  # full: producer is parked
            assert await q.get_batch(4) == [1]
            await waiter
            assert await q.get_batch(4) == [2]

        run(scenario())

    def test_get_batch_respects_max_items_and_order(self):
        async def scenario():
            q = BoundedIngressQueue(capacity=8)
            for i in range(5):
                q.offer(i)
            assert await q.get_batch(3) == [0, 1, 2]
            assert await q.get_batch(3) == [3, 4]

        run(scenario())

    def test_get_batch_returns_none_when_closed_and_drained(self):
        async def scenario():
            q = BoundedIngressQueue(capacity=4)
            q.offer(1)
            q.close()
            assert await q.get_batch(4) == [1]  # drains the remainder first
            assert await q.get_batch(4) is None

        run(scenario())

    def test_get_batch_wakes_on_close(self):
        async def scenario():
            q = BoundedIngressQueue(capacity=4)
            consumer = asyncio.ensure_future(q.get_batch(4))
            await asyncio.sleep(0)
            q.close()
            assert await consumer is None

        run(scenario())

    def test_put_interrupted_by_close_raises(self):
        async def scenario():
            q = BoundedIngressQueue(capacity=1)
            await q.put(1)
            waiter = asyncio.ensure_future(q.put(2))
            await asyncio.sleep(0)
            q.close()
            with pytest.raises(QueueClosedError):
                await waiter

        run(scenario())

    def test_get_batch_validates_max_items(self):
        async def scenario():
            q = BoundedIngressQueue(capacity=1)
            with pytest.raises(ValueError):
                await q.get_batch(0)

        run(scenario())
