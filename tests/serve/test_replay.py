"""The replay-mode contract: bit-identical results at any shard count.

These are the service's headline invariants (see docs/serving.md):

* the sha256 response digest is identical for ``--shards 1/2/4``;
* the merged fleet metrics snapshot is bit-identical — including the
  float-valued gauges and histogram sums — at any shard count;
* the epsilon/delta budget gauges equal the ledger-entry audit exactly.
"""

import pytest

from repro.serve.events import ServeWorkloadConfig, build_schedule
from repro.serve.harness import run_service
from repro.serve.service import ServeConfig, ServeService

WORKLOAD = dict(n_users=6, n_events=150, n_campaigns=40, seed=11)


def replay(n_shards, use_processes=False, **overrides):
    kwargs = dict(WORKLOAD)
    kwargs.update(overrides)
    return run_service(
        replay=True, n_shards=n_shards, use_processes=use_processes, **kwargs
    )


@pytest.fixture(scope="module")
def baseline():
    return replay(1)


class TestReplayDeterminism:
    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_digest_and_metrics_identical_across_shards(self, baseline, n_shards):
        result = replay(n_shards)
        assert result.digest == baseline.digest
        assert result.metrics == baseline.metrics
        assert result.metrics_digest() == baseline.metrics_digest()

    def test_rerun_is_bit_identical(self, baseline):
        assert replay(1).digest == baseline.digest

    def test_seed_changes_digest(self, baseline):
        assert replay(1, seed=12).digest != baseline.digest

    def test_all_events_processed_none_dropped(self, baseline):
        assert baseline.processed == WORKLOAD["n_events"]
        assert baseline.dropped == 0
        counters = baseline.metrics["counters"]
        assert counters["serve.events"] == WORKLOAD["n_events"]
        assert counters["serve.ingress.enqueued"] == WORKLOAD["n_events"]
        assert counters["serve.ingress.dropped"] == 0

    def test_responses_cover_schedule_in_seq_order(self, baseline):
        assert [r.seq for r in baseline.responses] == list(
            range(WORKLOAD["n_events"])
        )


class TestLedgerExactness:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_epsilon_gauge_equals_ledger_audit_exactly(self, n_shards):
        result = replay(n_shards)
        gauges = result.metrics["gauges"]
        assert result.ledger_spends > 0  # the workload actually pins
        assert gauges["privacy.epsilon_spent"] == result.audit_epsilon
        assert gauges["privacy.delta_spent"] == result.audit_delta
        assert gauges["privacy.epsilon_spent"] == pytest.approx(
            result.ledger_epsilon
        )
        assert result.metrics["counters"]["privacy.ledger_spends"] == (
            result.ledger_spends
        )


class TestProcessBackend:
    def test_process_backend_matches_inline(self, baseline):
        result = replay(2, use_processes=True)
        if result.backend != "process":
            pytest.skip("worker processes unavailable in this sandbox")
        assert result.digest == baseline.digest
        assert result.metrics == baseline.metrics


class TestVirtualLatency:
    def test_pin_histogram_is_deterministic(self, baseline):
        pin = baseline.metrics["histograms"]["edge.obfuscation.pin_seconds"]
        assert pin["count"] == baseline.ledger_spends
        again = replay(4)
        assert again.metrics["histograms"]["edge.obfuscation.pin_seconds"] == pin


class TestScheduleInjection:
    def test_prebuilt_schedule_round_trips(self):
        workload = ServeWorkloadConfig(**WORKLOAD)
        schedule = build_schedule(workload)
        config = ServeConfig(
            workload=workload, n_shards=2, replay=True, use_processes=False
        )
        a = ServeService(config, schedule=schedule).run()
        b = ServeService(config).run()
        assert a.digest == b.digest
