"""Backpressure: bounded queues shed, drops are counted, budget is safe.

The privacy half of the contract matters most: a shed event never
reaches an actor, so the ledger is never charged for it — load shedding
costs ad requests, not epsilon.
"""

from repro.serve.harness import run_service

WORKLOAD = dict(n_users=6, n_events=300, n_campaigns=40, seed=11)


def saturated(**overrides):
    """A deterministically saturated live run: the whole stream arrives
    as one burst against a tiny queue, so almost everything sheds."""
    kwargs = dict(
        replay=False,
        n_shards=1,
        use_processes=False,
        queue_capacity=8,
        batch_max=8,
        producer_burst=WORKLOAD["n_events"],
        **WORKLOAD,
    )
    kwargs.update(overrides)
    return run_service(**kwargs)


class TestShedding:
    def test_queue_saturates_and_drops_are_counted(self):
        result = saturated()
        assert result.dropped > 0
        assert result.processed + result.dropped == WORKLOAD["n_events"]
        counters = result.metrics["counters"]
        assert counters["serve.ingress.dropped"] == result.dropped
        assert counters["serve.ingress.enqueued"] == result.enqueued
        assert counters["serve.events"] == result.processed
        assert result.shard_stats[0]["high_water"] <= 8

    def test_ledger_never_charged_for_shed_events(self):
        result = saturated()
        # Every ledger entry is attributable to a processed event or a
        # finalize flush; the audit walks exactly those entries, and the
        # gauge equals it — nothing was charged for the shed events.
        gauges = result.metrics["gauges"]
        assert gauges.get("privacy.epsilon_spent", 0.0) == result.audit_epsilon
        assert gauges.get("privacy.delta_spent", 0.0) == result.audit_delta
        # The longitudinal accountant too: one observation per *served*
        # nomadic release, never one for a shed event.
        nomadic = result.metrics["counters"].get("serve.path.nomadic", 0)
        observed = result.metrics["counters"].get(
            "privacy.longitudinal_observations", 0
        )
        assert observed == nomadic <= result.processed

    def test_unsaturated_run_sheds_nothing(self):
        result = saturated(producer_burst=1, queue_capacity=512)
        assert result.dropped == 0
        assert result.processed == WORKLOAD["n_events"]

    def test_shedding_reduces_budget_spend(self):
        shed = saturated()
        full = saturated(producer_burst=1, queue_capacity=512)
        assert shed.processed < full.processed
        obs_shed = shed.metrics["counters"].get(
            "privacy.longitudinal_observations", 0
        )
        obs_full = full.metrics["counters"]["privacy.longitudinal_observations"]
        assert obs_shed < obs_full
