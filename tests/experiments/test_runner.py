"""Unit tests for the experiment CLI runner."""

import pytest

from repro.experiments.runner import EXPERIMENTS, main


class TestRunnerCli:
    def test_experiment_registry_complete(self):
        """Every paper table/figure with evaluation content is registered."""
        expected = {
            "table1", "fig2", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9",
            "table2", "table3", "ext_adaptive",
        }
        assert set(EXPERIMENTS) == expected

    def test_runs_single_experiment(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "google" in out

    def test_runs_multiple(self, capsys):
        assert main(["table1", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_unknown_scale_errors(self):
        with pytest.raises(SystemExit):
            main(["table1", "--scale", "galactic"])
