"""The bench harness: cold/warm archives and the regression gate."""

import json

import pytest

from repro.experiments.bench import (
    compare_benches,
    main,
    run_cold_warm,
    run_shm_bench,
)
from repro.experiments.config import ExperimentScale

TINY = ExperimentScale(name="tiny", trials=30, n_users=5, mc_samples=64)


def _bench(wall, stages=None):
    return {
        "experiment_id": "x",
        "wall_seconds": wall,
        "stage_seconds": stages or {},
    }


class TestCompare:
    def test_equal_is_clean(self):
        assert compare_benches(_bench(1.0), _bench(1.0)) == []

    def test_faster_is_clean(self):
        assert compare_benches(_bench(2.0), _bench(0.5)) == []

    def test_wall_clock_regression_flagged(self):
        problems = compare_benches(_bench(1.0), _bench(1.5))
        assert len(problems) == 1
        assert "wall_seconds" in problems[0]

    def test_threshold_boundary(self):
        assert compare_benches(_bench(1.0), _bench(1.09)) == []
        assert compare_benches(_bench(1.0), _bench(1.11)) != []

    def test_small_absolute_regressions_ignored(self):
        # 100% slower but only 10 ms absolute: scheduler noise, not a regression.
        assert compare_benches(_bench(0.01), _bench(0.02)) == []

    def test_stage_regression_flagged(self):
        old = _bench(1.0, {"attack": 0.9, "tiny": 0.001})
        new = _bench(1.0, {"attack": 1.8, "tiny": 0.002})
        problems = compare_benches(old, new)
        assert len(problems) == 1
        assert "attack" in problems[0]

    def test_unshared_stages_ignored(self):
        old = _bench(1.0, {"only_old": 5.0})
        new = _bench(1.0, {"only_new": 5.0})
        assert compare_benches(old, new) == []

    def test_missing_wall_seconds_tolerated(self):
        assert compare_benches({"stage_seconds": {}}, _bench(9.0)) == []


class TestCompareCli:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_clean_compare_exits_zero(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", _bench(1.0))
        new = self._write(tmp_path, "new.json", _bench(0.9))
        assert main(["--compare", old, new]) == 0
        assert "ok" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", _bench(1.0))
        new = self._write(tmp_path, "new.json", _bench(2.0))
        assert main(["--compare", old, new]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_custom_threshold(self, tmp_path):
        old = self._write(tmp_path, "old.json", _bench(1.0))
        new = self._write(tmp_path, "new.json", _bench(1.5))
        assert main(["--compare", old, new, "--threshold", "0.6"]) == 0


class TestColdWarm:
    def test_fig9_cold_warm_archives(self, tmp_path):
        cold, warm = run_cold_warm(
            "fig9",
            TINY,
            workers=1,
            cache_dir=tmp_path / "cache",
            results_dir=tmp_path / "results",
        )
        assert cold["rows"] == warm["rows"]
        assert warm["cache"]["hits"] > 0
        assert warm["cache"]["stores"] == 0
        assert (tmp_path / "results" / "BENCH_fig9_cache_cold.json").is_file()
        archived = json.loads(
            (tmp_path / "results" / "BENCH_fig9_cache_warm.json").read_text()
        )
        assert archived["experiment_id"] == "fig9_cache_warm"
        assert archived["scale"]["name"] == "tiny"

    def test_unknown_experiment_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            run_cold_warm("nope", TINY, cache_dir=tmp_path)


class TestShmBench:
    def test_transport_metrics(self, tmp_path):
        result = run_shm_bench(
            n_points=40_000, n_tasks=8, workers=2, results_dir=tmp_path
        )
        assert result["pickle"]["pickled_payload_bytes"] > result["payload_nbytes"]
        if result["shm"]["shared_arrays"]:
            assert result["shm"]["shared_bytes"] == result["payload_nbytes"]
            assert (
                result["shm"]["pickled_payload_bytes"]
                < result["pickle"]["pickled_payload_bytes"]
            )
        assert (tmp_path / "BENCH_shm_fanout.json").is_file()


class TestStageKeyNotes:
    def test_shared_keys_produce_no_notes(self):
        from repro.experiments.bench import stage_key_notes

        old = _bench(1.0, {"attack": 0.9})
        new = _bench(1.0, {"attack": 1.0})
        assert stage_key_notes(old, new) == []

    def test_missing_and_added_keys_reported(self):
        from repro.experiments.bench import stage_key_notes

        old = _bench(1.0, {"datagen.v1": 2.0, "attack": 0.9})
        new = _bench(1.0, {"datagen.v2": 2.0, "attack": 0.9})
        notes = stage_key_notes(old, new)
        assert len(notes) == 2
        assert "'datagen.v1'" in notes[0] and "OLD" in notes[0]
        assert "'datagen.v2'" in notes[1] and "NEW" in notes[1]

    def test_disjoint_keys_warn_wall_clock_only(self):
        from repro.experiments.bench import stage_key_notes

        notes = stage_key_notes(
            _bench(1.0, {"a": 1.0}), _bench(1.0, {"b": 1.0})
        )
        assert any("wall clock" in n for n in notes)

    def test_compare_cli_prints_notes_without_failing(self, tmp_path, capsys):
        old_path = tmp_path / "old.json"
        new_path = tmp_path / "new.json"
        old_path.write_text(json.dumps(_bench(1.0, {"stage.v1": 1.0})))
        new_path.write_text(json.dumps(_bench(1.0, {"stage.v2": 1.0})))
        assert main(["--compare", str(old_path), str(new_path)]) == 0
        out = capsys.readouterr().out
        assert "stage.v1" in out and "stage.v2" in out
        assert "ok (" in out
