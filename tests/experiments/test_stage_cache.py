"""Experiment-level stage caching: warm runs are hits and bit-identical."""

import numpy as np
import pytest

from repro.data.cache import StageCache
from repro.experiments import fig6_attack, fig7_mechanisms, fig9_efficacy
from repro.experiments.config import ExperimentScale

TINY = ExperimentScale(name="tiny", trials=40, n_users=6, mc_samples=64)


class TestFig6Cache:
    @pytest.fixture(scope="class")
    def runs(self, tmp_path_factory):
        cache_dir = tmp_path_factory.mktemp("fig6cache")
        plain = fig6_attack.run(TINY)
        cold_cache = StageCache(cache_dir)
        cold = fig6_attack.run(TINY, cache=cold_cache)
        warm_cache = StageCache(cache_dir)
        warm = fig6_attack.run(TINY, cache=warm_cache)
        return plain, cold, cold_cache, warm, warm_cache

    def test_rows_bit_identical_across_cache_states(self, runs):
        plain, cold, _, warm, _ = runs
        assert plain.rows == cold.rows == warm.rows

    def test_cold_run_stores_every_stage(self, runs):
        _, _, cold_cache, _, _ = runs
        # population + 3 one-time levels + 2 defended epsilons
        assert cold_cache.stats()["stores"] == 6
        assert cold_cache.stats()["hits"] == 0

    def test_warm_run_skips_population_and_attacks(self, runs):
        _, _, _, warm, warm_cache = runs
        # All 5 attack stages hit; population generation never runs.
        assert warm_cache.stats() == {"hits": 5, "misses": 0, "stores": 0}
        assert "population" not in warm.meta["stage_seconds"]
        assert warm.meta["cache"] == warm_cache.stats()

    def test_workers_do_not_change_rows(self, runs):
        plain = runs[0]
        parallel = fig6_attack.run(TINY, workers=2)
        assert parallel.rows == plain.rows


class TestSweepCaches:
    def test_fig7_partial_recompute_is_identical(self, tmp_path):
        ns = (1, 2)
        plain = fig7_mechanisms.run(TINY, ns=(1, 2, 3))
        partial_cache = StageCache(tmp_path)
        fig7_mechanisms.run(TINY, ns=ns, cache=partial_cache)
        extended_cache = StageCache(tmp_path)
        extended = fig7_mechanisms.run(TINY, ns=(1, 2, 3), cache=extended_cache)
        assert extended.rows == plain.rows
        # 2 cached ns x 3 mechanisms hit; 1 new n x 3 mechanisms stored.
        assert extended_cache.stats()["hits"] == 6
        assert extended_cache.stats()["stores"] == 3

    def test_fig9_partial_recompute_is_identical(self, tmp_path):
        plain = fig9_efficacy.run(TINY, ns=(1, 2, 3))
        partial_cache = StageCache(tmp_path)
        fig9_efficacy.run(TINY, ns=(1, 3), cache=partial_cache)
        extended_cache = StageCache(tmp_path)
        extended = fig9_efficacy.run(TINY, ns=(1, 2, 3), cache=extended_cache)
        assert extended.rows == plain.rows
        assert extended_cache.stats()["hits"] == 2
        assert extended_cache.stats()["stores"] == 1

    def test_cache_values_survive_the_npz_round_trip(self, tmp_path):
        cache = StageCache(tmp_path)
        first = fig9_efficacy.run(TINY, ns=(2,), cache=cache)
        warm = fig9_efficacy.run(TINY, ns=(2,), cache=StageCache(tmp_path))
        for row_a, row_b in zip(first.rows, warm.rows):
            assert set(row_a) == set(row_b)
            for key in row_a:
                assert np.asarray(row_a[key]).item() == np.asarray(row_b[key]).item()
