"""Smoke + shape tests for every experiment driver at tiny scale.

These are the reproduction's own regression tests: each driver must run
and its rows must exhibit the paper's qualitative shape (who wins, which
direction curves move).  The benchmarks run the same drivers at larger
scale.
"""

import pytest

from repro.experiments import (
    fig2_mobility,
    fig3_entropy,
    fig4_case_study,
    fig6_attack,
    fig7_mechanisms,
    fig8_min_utilization,
    fig9_efficacy,
    table1_limits,
    table2_obfuscation_time,
    table3_selection_time,
)
from repro.experiments.config import ExperimentScale

TINY = ExperimentScale(name="tiny", trials=60, n_users=15, mc_samples=256)


class TestTable1:
    def test_four_platforms(self):
        report = table1_limits.run()
        assert len(report.rows) == 4


class TestFig2:
    def test_top2_dominate(self):
        report = fig2_mobility.run()
        shares = [r["share"] for r in report.rows]
        assert shares[0] + shares[1] > 0.8


class TestFig3:
    def test_entropy_trend(self):
        report = fig3_entropy.run(TINY)
        assert report.rows
        means = [r["mean_entropy"] for r in report.rows if r["users"] > 0]
        # Declining overall: first populated bucket above last.
        assert means[0] > means[-1]


class TestFig4:
    def test_error_shrinks_with_window(self):
        report = fig4_case_study.run()
        errors = [r["inference_error_m"] for r in report.rows]
        assert len(errors) == 3
        assert errors[2] < errors[0]
        assert errors[2] < 100.0  # paper: <50 m at full year


class TestFig6:
    @pytest.fixture(scope="class")
    def report(self):
        return fig6_attack.run(TINY)

    def test_one_time_highly_vulnerable(self, report):
        onetime = [r for r in report.rows if r["mechanism"] == "one-time geo-IND"]
        assert all(r["top1_within_200m"] >= 0.6 for r in onetime)

    def test_defense_thwarts_attack(self, report):
        defended = [r for r in report.rows if "10-fold" in r["mechanism"]]
        assert all(r["top1_within_200m"] <= 0.15 for r in defended)

    def test_defense_weaker_than_one_time_everywhere(self, report):
        onetime = [r for r in report.rows if r["mechanism"] == "one-time geo-IND"]
        defended = [r for r in report.rows if "10-fold" in r["mechanism"]]
        worst_defended = max(r["top1_within_200m"] for r in defended)
        best_onetime = min(r["top1_within_200m"] for r in onetime)
        assert worst_defended < best_onetime


class TestFig7:
    @pytest.fixture(scope="class")
    def report(self):
        return fig7_mechanisms.run(TINY, ns=(1, 5, 10))

    def _mean_ur(self, report, mechanism, n):
        for r in report.rows:
            if r["mechanism"] == mechanism and r["n"] == n:
                return r["mean_UR"]
        raise KeyError((mechanism, n))

    def test_nfold_wins_at_n10(self, report):
        nfold = self._mean_ur(report, "n-fold gaussian", 10)
        naive = self._mean_ur(report, "naive post-processing", 10)
        comp = self._mean_ur(report, "plain composition", 10)
        assert nfold > naive > comp

    def test_composition_degrades_with_n(self, report):
        assert self._mean_ur(report, "plain composition", 10) < self._mean_ur(
            report, "plain composition", 1
        )

    def test_nfold_improves_with_n(self, report):
        assert self._mean_ur(report, "n-fold gaussian", 10) > self._mean_ur(
            report, "n-fold gaussian", 1
        )


class TestFig8:
    def test_min_ur_rises_with_n(self):
        report = fig8_min_utilization.run(TINY, ns=(1, 10))
        by_eps = {}
        for r in report.rows:
            by_eps.setdefault(r["epsilon"], {})[r["n"]] = r["min_UR(r=500)"]
        for eps, curve in by_eps.items():
            assert curve[10] > curve[1]

    def test_larger_r_lowers_min_ur(self):
        report = fig8_min_utilization.run(TINY, ns=(10,))
        row = report.rows[0]
        assert row["min_UR(r=500)"] >= row["min_UR(r=800)"] - 0.05


class TestFig9:
    def test_efficacy_stable_with_posterior(self):
        report = fig9_efficacy.run(TINY, ns=(2, 10))
        first, last = report.rows[0], report.rows[-1]
        # Paper Observation 4: no collapse as n grows.
        assert last["efficacy(r=500)"] > first["efficacy(r=500)"] * 0.7

    def test_uniform_ablation_decays(self):
        post = fig9_efficacy.run(TINY, ns=(1, 10), selector_kind="posterior")
        unif = fig9_efficacy.run(TINY, ns=(1, 10), selector_kind="uniform")
        assert (
            unif.rows[-1]["efficacy(r=500)"] < post.rows[-1]["efficacy(r=500)"]
        )


class TestScalability:
    def test_table2_rows_and_monotonicity(self):
        report = table2_obfuscation_time.run(TINY, sizes=(10, 20, 40), pool_size=8)
        seconds = [r["seconds"] for r in report.rows]
        assert len(seconds) == 3
        assert seconds[2] > seconds[0]

    def test_table3_rows(self):
        report = table3_selection_time.run(TINY, sizes=(200, 400, 800))
        ms = [r["milliseconds"] for r in report.rows]
        assert len(ms) == 3
        assert ms[2] > ms[0]
