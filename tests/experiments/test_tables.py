"""Unit tests for the text-table report rendering."""

from repro.experiments.tables import ExperimentReport, format_table


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_alignment_and_headers(self):
        rows = [{"name": "a", "value": 1.5}, {"name": "bb", "value": 22.25}]
        out = format_table(rows)
        lines = out.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert len(lines) == 4  # header + sep + 2 rows

    def test_explicit_column_order(self):
        rows = [{"b": 2, "a": 1}]
        out = format_table(rows, columns=["a", "b"])
        assert out.splitlines()[0].startswith("a")

    def test_thousands_formatting(self):
        out = format_table([{"v": 12_345.0}])
        assert "12,345" in out

    def test_nan_rendering(self):
        out = format_table([{"v": float("nan")}])
        assert "nan" in out


class TestExperimentReport:
    def test_render_includes_id_title_notes(self):
        report = ExperimentReport(
            experiment_id="figX",
            title="demo",
            rows=[{"a": 1}],
            notes=["paper: something"],
        )
        out = report.render()
        assert "figX" in out
        assert "demo" in out
        assert "note: paper: something" in out
