"""Unit tests for the experiment scale configuration."""

import math

import pytest

from repro.experiments.config import (
    FULL,
    MEDIUM,
    PAPER_DELTA,
    PAPER_EPSILONS,
    PAPER_NFOLD_N,
    PAPER_ONETIME_LEVELS,
    PAPER_RADII_M,
    PAPER_TARGETING_RADIUS_M,
    PAPER_TRIALS,
    SMALL,
    ExperimentScale,
)


class TestPaperConstants:
    def test_match_section_vii(self):
        """The constants must mirror the paper's Section VII-A settings."""
        assert PAPER_DELTA == 0.01
        assert PAPER_EPSILONS == (1.0, 1.5)
        assert PAPER_RADII_M == (500.0, 600.0, 700.0, 800.0)
        assert PAPER_TARGETING_RADIUS_M == 5_000.0
        assert PAPER_TRIALS == 100_000
        assert PAPER_NFOLD_N == 10

    def test_onetime_levels(self):
        assert PAPER_ONETIME_LEVELS == (math.log(2), math.log(4), math.log(6))


class TestScales:
    def test_ordering(self):
        assert SMALL.trials < MEDIUM.trials < FULL.trials
        assert SMALL.n_users < MEDIUM.n_users < FULL.n_users

    def test_full_matches_paper(self):
        assert FULL.trials == PAPER_TRIALS
        assert FULL.n_users == 37_262

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentScale(name="bad", trials=0, n_users=10)
        with pytest.raises(ValueError):
            ExperimentScale(name="bad", trials=10, n_users=0)
        with pytest.raises(ValueError):
            ExperimentScale(name="bad", trials=10, n_users=10, mc_samples=0)
