"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.experiments.plotting import ascii_chart, chart_from_rows


class TestAsciiChart:
    def test_empty_series(self):
        assert ascii_chart({}) == "(no series)"

    def test_single_series_renders_markers(self):
        chart = ascii_chart({"ur": [(1, 0.5), (2, 0.7), (3, 0.9)]})
        assert "o" in chart
        assert "ur" in chart
        assert "0.9" in chart and "0.5" in chart  # y-axis range labels

    def test_multiple_series_distinct_markers(self):
        chart = ascii_chart(
            {"a": [(1, 1.0), (2, 2.0)], "b": [(1, 2.0), (2, 1.0)]}
        )
        assert "o a" in chart
        assert "x b" in chart

    def test_constant_series_does_not_crash(self):
        chart = ascii_chart({"flat": [(1, 5.0), (2, 5.0)]})
        assert "flat" in chart

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            ascii_chart({"a": [(0, 0)]}, width=5, height=2)

    def test_extremes_on_grid_edges(self):
        chart = ascii_chart({"s": [(0, 0.0), (10, 1.0)]}, width=20, height=6)
        lines = chart.splitlines()
        plot_lines = [l for l in lines if "|" in l]
        # Max lands on the top plot row, min on the bottom one.
        assert "o" in plot_lines[0]
        assert "o" in plot_lines[-1]


class TestChartFromRows:
    ROWS = [
        {"n": 1, "mechanism": "a", "mean_UR": 0.5},
        {"n": 2, "mechanism": "a", "mean_UR": 0.7},
        {"n": 1, "mechanism": "b", "mean_UR": 0.4},
        {"n": 2, "mechanism": "b", "mean_UR": 0.3},
    ]

    def test_grouped_series(self):
        chart = chart_from_rows(
            self.ROWS, x_key="n", y_keys=["mean_UR"], group_key="mechanism"
        )
        assert "o a" in chart
        assert "x b" in chart

    def test_column_series(self):
        rows = [{"n": 1, "u": 0.1, "v": 0.2}, {"n": 2, "u": 0.3, "v": 0.1}]
        chart = chart_from_rows(rows, x_key="n", y_keys=["u", "v"])
        assert "o u" in chart
        assert "x v" in chart


class TestRunnerCharts:
    def test_runner_charts_flag(self, capsys):
        from repro.experiments.runner import main

        assert main(["table2", "--charts"]) == 0
        out = capsys.readouterr().out
        assert "seconds" in out
        assert "|" in out  # chart axis present
