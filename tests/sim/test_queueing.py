"""Unit tests for the edge queueing model."""

import numpy as np
import pytest

from repro.sim.queueing import EdgeQueueModel, simulate_edge_queue


def constant_service(value):
    return lambda rng: value


class TestEdgeQueueModel:
    def test_all_requests_served(self):
        stats = simulate_edge_queue(
            arrival_rate=100.0,
            n_requests=500,
            n_workers=2,
            service_time=constant_service(0.005),
        )
        assert stats.served == 500

    def test_light_load_no_waiting(self):
        """Far below saturation, response ~= service time."""
        stats = simulate_edge_queue(
            arrival_rate=10.0,
            n_requests=2_000,
            n_workers=4,
            service_time=constant_service(0.001),
        )
        assert stats.mean_wait < 1e-4
        assert stats.mean_response == pytest.approx(0.001, rel=0.05)

    def test_overload_builds_queue(self):
        """Arrivals above capacity must queue and inflate response times."""
        stats = simulate_edge_queue(
            arrival_rate=2_000.0,  # capacity is 1 / 0.001 = 1,000 req/s
            n_requests=3_000,
            n_workers=1,
            service_time=constant_service(0.001),
        )
        assert stats.mean_wait > 0.01
        assert stats.max_queue_len > 100

    def test_utilization_matches_load(self):
        """rho = lambda * E[S] / c within sampling noise."""
        stats = simulate_edge_queue(
            arrival_rate=500.0,
            n_requests=20_000,
            n_workers=2,
            service_time=constant_service(0.002),
        )
        assert stats.utilization == pytest.approx(0.5, abs=0.05)

    def test_more_workers_cut_waits(self):
        common = dict(
            arrival_rate=800.0, n_requests=5_000,
            service_time=constant_service(0.002),
        )
        one = simulate_edge_queue(n_workers=1, seed=1, **common)
        four = simulate_edge_queue(n_workers=4, seed=1, **common)
        assert four.mean_wait < one.mean_wait

    def test_percentiles_ordered(self):
        stats = simulate_edge_queue(
            arrival_rate=400.0,
            n_requests=5_000,
            n_workers=2,
            service_time=lambda rng: float(rng.exponential(0.002)),
        )
        assert stats.p50_response <= stats.p95_response <= stats.p99_response

    def test_meets_deadline_api(self):
        stats = simulate_edge_queue(
            arrival_rate=10.0,
            n_requests=500,
            n_workers=4,
            service_time=constant_service(0.001),
        )
        assert stats.meets_deadline(0.1, "p99")
        assert not stats.meets_deadline(1e-6, "p50")

    def test_validation(self):
        model = EdgeQueueModel(1, constant_service(0.001))
        with pytest.raises(ValueError):
            model.run(arrival_rate=0.0, n_requests=10)
        with pytest.raises(ValueError):
            model.run(arrival_rate=1.0, n_requests=0)
        with pytest.raises(ValueError):
            EdgeQueueModel(0, constant_service(0.001))

    def test_negative_service_time_rejected(self):
        model = EdgeQueueModel(1, constant_service(-1.0))
        with pytest.raises(ValueError):
            model.run(arrival_rate=1.0, n_requests=1)

    def test_mm1_mean_wait_close_to_theory(self):
        """M/M/1 sanity: W_q = rho / (mu - lambda) at rho = 0.5."""
        lam, mu = 500.0, 1_000.0
        stats = simulate_edge_queue(
            arrival_rate=lam,
            n_requests=60_000,
            n_workers=1,
            service_time=lambda rng: float(rng.exponential(1.0 / mu)),
            seed=4,
        )
        expected_wq = (lam / mu) / (mu - lam)  # = 0.001 s
        assert stats.mean_wait == pytest.approx(expected_wq, rel=0.15)
