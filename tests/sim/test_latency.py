"""Unit tests for the latency-sweep study."""

import numpy as np
import pytest

from repro.sim.latency import (
    RTB_DEADLINE_S,
    latency_sweep,
    lognormal_service,
    measure_selection_service_time,
)


class TestLognormalService:
    def test_median_matches(self, rng):
        service = lognormal_service(0.01, sigma=0.5)
        draws = np.array([service(rng) for _ in range(20_000)])
        assert np.median(draws) == pytest.approx(0.01, rel=0.05)

    def test_floor_added(self, rng):
        service = lognormal_service(0.01, sigma=0.1, floor_s=0.5)
        assert service(rng) > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            lognormal_service(0.0)
        with pytest.raises(ValueError):
            lognormal_service(0.01, sigma=-1.0)


class TestMeasureServiceTime:
    def test_positive_and_small(self):
        t = measure_selection_service_time(samples=200)
        assert 0.0 < t < 0.05  # selection is tens of microseconds


class TestLatencySweep:
    def test_latency_grows_with_load(self):
        points = latency_sweep(
            arrival_rates=[50.0, 400.0],
            service_median_s=0.002,
            n_workers=1,
            n_requests=4_000,
        )
        assert points[1].stats.p99_response >= points[0].stats.p99_response

    def test_light_load_meets_rtb_deadline(self):
        points = latency_sweep(
            arrival_rates=[50.0],
            service_median_s=0.002,
            n_workers=4,
            n_requests=4_000,
        )
        assert points[0].meets_rtb_deadline

    def test_saturation_violates_deadline(self):
        points = latency_sweep(
            arrival_rates=[5_000.0],  # far past 1/0.002 = 500 req/s/worker
            service_median_s=0.002,
            n_workers=1,
            n_requests=4_000,
        )
        assert not points[0].meets_rtb_deadline
        assert points[0].stats.utilization > 0.9
