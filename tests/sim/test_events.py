"""Unit tests for the discrete-event simulator core."""

import pytest

from repro.sim.events import Simulator


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(3.0, fired.append, "middle")
        sim.run()
        assert fired == ["early", "middle", "late"]
        assert sim.now == 5.0

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain(k):
            fired.append(k)
            if k < 3:
                sim.schedule(1.0, chain, k + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_run_until_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        assert fired == ["a"]
        assert sim.now == 5.0
        assert sim.pending == 1

    def test_run_until_includes_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "edge")
        sim.run(until=5.0)
        assert fired == ["edge"]

    def test_max_events_cap(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i), fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_schedule_at_absolute(self):
        sim = Simulator(start_time=100.0)
        fired = []
        sim.schedule_at(105.0, fired.append, "x")
        sim.run()
        assert sim.now == 105.0

    def test_no_past_scheduling(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_at(5.0, lambda: None)

    def test_step_on_empty_queue(self):
        assert not Simulator().step()

    def test_processed_counter(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.processed == 2
