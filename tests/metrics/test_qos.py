"""Unit tests for the QoS (expected distance loss) metric."""

import numpy as np
import pytest

from repro.core.gaussian import GaussianMechanism, NFoldGaussianMechanism
from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget, OneTimeBudget
from repro.core.posterior import PosteriorSelector, UniformSelector
from repro.geo.point import Point
from repro.metrics.qos import expected_distance_loss, report_distances


class TestReportDistances:
    def test_single_output_no_selector_needed(self):
        mech = PlanarLaplaceMechanism(OneTimeBudget(0.01), rng=default_rng(0))
        d = report_distances(mech, trials=200)
        assert d.shape == (200,)
        assert (d >= 0).all()

    def test_multi_output_requires_selector(self, paper_budget):
        mech = NFoldGaussianMechanism(paper_budget, rng=default_rng(1))
        with pytest.raises(ValueError):
            report_distances(mech, trials=5)

    def test_laplace_mean_distance_theory(self):
        eps = 0.01
        mech = PlanarLaplaceMechanism(OneTimeBudget(eps), rng=default_rng(2))
        loss = expected_distance_loss(mech, trials=4_000)
        assert loss == pytest.approx(2 / eps, rel=0.05)

    def test_posterior_selection_lowers_loss(self, paper_budget):
        mech_p = NFoldGaussianMechanism(paper_budget, rng=default_rng(3))
        loss_post = expected_distance_loss(
            mech_p,
            trials=400,
            selector=PosteriorSelector(mech_p.posterior_sigma, rng=default_rng(4)),
        )
        mech_u = NFoldGaussianMechanism(paper_budget, rng=default_rng(3))
        loss_unif = expected_distance_loss(
            mech_u, trials=400, selector=UniformSelector(rng=default_rng(4))
        )
        assert loss_post < loss_unif

    def test_post_process_hook_applied(self):
        mech = GaussianMechanism(
            GeoIndBudget(500, 1.0, 0.01, 1), rng=default_rng(5)
        )
        loss = expected_distance_loss(
            mech, trials=50, post_process=lambda p: Point(0.0, 0.0)
        )
        assert loss == 0.0

    def test_rejects_bad_trials(self):
        mech = PlanarLaplaceMechanism(OneTimeBudget(0.01))
        with pytest.raises(ValueError):
            report_distances(mech, trials=0)
