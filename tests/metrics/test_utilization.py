"""Unit tests for the utilization-rate metric (Definition 4 / Eq. 24)."""

import numpy as np
import pytest

from repro.core.gaussian import NFoldGaussianMechanism
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget
from repro.geo.geometry import circle_overlap_fraction
from repro.geo.point import Point
from repro.metrics.utilization import (
    minimal_utilization,
    summarize_utilization,
    utilization_rate,
    utilization_samples,
)


class TestUtilizationRate:
    def test_perfect_report_full_ur(self, rng):
        assert utilization_rate(Point(0, 0), [Point(0, 0)], 5_000.0, rng=rng) == 1.0

    def test_far_report_zero_ur(self, rng):
        assert utilization_rate(Point(0, 0), [Point(100_000, 0)], 5_000.0, rng=rng) == 0.0

    def test_single_report_matches_lens(self, rng):
        true, reported = Point(0, 0), Point(4_000, 0)
        ur = utilization_rate(true, [reported], 5_000.0, rng=rng)
        assert ur == pytest.approx(circle_overlap_fraction(true, reported, 5_000.0))

    def test_more_candidates_never_reduce_ur(self, rng):
        true = Point(0, 0)
        one = utilization_rate(true, [Point(4_000, 0)], 5_000.0, samples=20_000, rng=rng)
        two = utilization_rate(
            true, [Point(4_000, 0), Point(-4_000, 0)], 5_000.0, samples=20_000, rng=rng
        )
        assert two >= one - 0.01

    def test_empty_report_zero(self, rng):
        assert utilization_rate(Point(0, 0), [], 5_000.0, rng=rng) == 0.0

    def test_bad_radius_raises(self, rng):
        with pytest.raises(ValueError):
            utilization_rate(Point(0, 0), [Point(0, 0)], 0.0, rng=rng)


class TestUtilizationSamples:
    def test_sample_count_and_range(self, paper_budget):
        mech = NFoldGaussianMechanism(paper_budget, rng=default_rng(0))
        samples = utilization_samples(mech, trials=30, mc_samples=256)
        assert samples.shape == (30,)
        assert ((samples >= 0) & (samples <= 1)).all()

    def test_ur_improves_with_n(self):
        """Figure 7/8 shape: mean UR grows with the candidate count."""
        urs = {}
        for n in (1, 10):
            budget = GeoIndBudget(500.0, 1.0, 0.01, n)
            mech = NFoldGaussianMechanism(budget, rng=default_rng(1))
            urs[n] = utilization_samples(mech, trials=120, mc_samples=512).mean()
        assert urs[10] > urs[1] + 0.1

    def test_rejects_bad_trials(self, paper_budget):
        mech = NFoldGaussianMechanism(paper_budget)
        with pytest.raises(ValueError):
            utilization_samples(mech, trials=0)


class TestMinimalUtilization:
    def test_quantile_semantics(self):
        samples = np.linspace(0.0, 1.0, 101)
        v = minimal_utilization(samples, alpha=0.9)
        # Pr(UR >= v) >= 0.9 must hold on the sample.
        assert (samples >= v).mean() >= 0.9

    def test_constant_sample(self):
        assert minimal_utilization(np.full(50, 0.7), 0.9) == pytest.approx(0.7)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            minimal_utilization(np.ones(5), 1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            minimal_utilization(np.empty(0), 0.9)


class TestSummary:
    def test_summary_fields(self):
        samples = np.array([0.5, 0.6, 0.7, 0.8])
        s = summarize_utilization(samples, alpha=0.9)
        assert s.mean == pytest.approx(0.65)
        assert s.trials == 4
        assert s.minimal_at_alpha <= s.mean
