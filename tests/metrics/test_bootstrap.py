"""Unit tests for bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.metrics.bootstrap import ConfidenceInterval, bootstrap_ci, proportion_ci


class TestBootstrapCi:
    def test_interval_contains_estimate(self, rng):
        samples = rng.normal(10.0, 2.0, 200)
        ci = bootstrap_ci(samples, rng=rng)
        assert ci.low <= ci.estimate <= ci.high

    def test_coverage_of_true_mean(self):
        """~95% of 95% CIs should cover the true mean."""
        true_mean = 5.0
        master = np.random.default_rng(0)
        covered = 0
        runs = 100
        for _ in range(runs):
            samples = master.normal(true_mean, 1.0, 80)
            ci = bootstrap_ci(samples, rng=master, n_resamples=400)
            covered += true_mean in ci
        assert covered >= 85  # loose lower bound for 95% nominal

    def test_width_shrinks_with_sample_size(self, rng):
        small = bootstrap_ci(rng.normal(0, 1, 20), rng=np.random.default_rng(1))
        large = bootstrap_ci(rng.normal(0, 1, 2_000), rng=np.random.default_rng(1))
        assert large.width < small.width

    def test_custom_statistic(self, rng):
        samples = rng.normal(0, 1, 500)
        ci = bootstrap_ci(samples, statistic=np.median, rng=rng)
        assert ci.low <= np.median(samples) <= ci.high

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            bootstrap_ci([], rng=rng)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.0, rng=rng)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], n_resamples=0, rng=rng)


class TestProportionCi:
    def test_estimate_is_rate(self, rng):
        ci = proportion_ci(30, 100, rng=rng)
        assert ci.estimate == pytest.approx(0.3)
        assert 0.0 <= ci.low <= 0.3 <= ci.high <= 1.0

    def test_extremes(self, rng):
        all_fail = proportion_ci(0, 50, rng=rng)
        assert all_fail.estimate == 0.0
        all_win = proportion_ci(50, 50, rng=rng)
        assert all_win.estimate == 1.0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            proportion_ci(1, 0, rng=rng)
        with pytest.raises(ValueError):
            proportion_ci(5, 3, rng=rng)
