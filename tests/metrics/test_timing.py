"""Unit tests for the timing harness."""

import time

import pytest

from repro.metrics.timing import (
    ChunkTiming,
    Stopwatch,
    TimingRow,
    measure_scaling,
    summarize_chunks,
)


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert sw.elapsed >= 0.009


class TestTimingRow:
    def test_per_item_ms(self):
        row = TimingRow(size=100, seconds=0.5)
        assert row.per_item_ms == pytest.approx(5.0)

    def test_zero_size(self):
        assert TimingRow(size=0, seconds=1.0).per_item_ms == 0.0


class TestMeasureScaling:
    def test_rows_per_size(self):
        calls = []
        rows = measure_scaling(lambda n: calls.append(n), sizes=[1, 2, 4])
        assert [r.size for r in rows] == [1, 2, 4]
        assert calls == [1, 2, 4]

    def test_best_of_repeats(self):
        rows = measure_scaling(lambda n: None, sizes=[1], repeats=3)
        assert rows[0].seconds >= 0.0

    def test_scaling_reflects_workload(self):
        def workload(n):
            total = 0
            for i in range(n * 20_000):
                total += i

        rows = measure_scaling(workload, sizes=[1, 8])
        assert rows[1].seconds > rows[0].seconds

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            measure_scaling(lambda n: None, sizes=[0])
        with pytest.raises(ValueError):
            measure_scaling(lambda n: None, sizes=[1], repeats=0)
        with pytest.raises(ValueError):
            measure_scaling(lambda n: None, sizes=[1], warmup=-1)

    def test_warmup_passes_run_but_are_not_measured(self):
        calls = []
        rows = measure_scaling(
            lambda n: calls.append(n), sizes=[3, 5], repeats=2, warmup=1
        )
        # Each size runs warmup + repeats times, in size order.
        assert calls == [3, 3, 3, 5, 5, 5]
        assert [r.size for r in rows] == [3, 5]

    def test_best_of_n_reports_minimum(self):
        delays = iter([0.03, 0.001, 0.03])

        def workload(n):
            time.sleep(next(delays))

        rows = measure_scaling(workload, sizes=[1], repeats=3)
        assert rows[0].seconds == pytest.approx(0.001, abs=0.01)
        assert rows[0].seconds <= rows[0].mean

    def test_mean_and_std_over_repeats(self):
        rows = measure_scaling(lambda n: None, sizes=[2], repeats=4)
        row = rows[0]
        assert row.mean >= row.seconds  # best-of-N <= mean
        assert row.std >= 0.0

    def test_single_repeat_degenerate_stats(self):
        rows = measure_scaling(lambda n: None, sizes=[2], repeats=1)
        assert rows[0].mean == pytest.approx(rows[0].seconds)
        assert rows[0].std == 0.0


class TestTimingRowStats:
    def test_two_arg_construction_backfills_stats(self):
        """Older call sites construct rows without mean/std."""
        row = TimingRow(size=10, seconds=0.25)
        assert row.mean == pytest.approx(0.25)
        assert row.std == 0.0

    def test_explicit_stats_preserved(self):
        row = TimingRow(size=10, seconds=0.2, mean=0.3, std=0.05)
        assert row.mean == pytest.approx(0.3)
        assert row.std == pytest.approx(0.05)


class TestSummarizeChunks:
    def test_empty(self):
        summary = summarize_chunks([])
        assert summary["chunks"] == 0

    def test_aggregates(self):
        chunks = [
            ChunkTiming(index=0, size=4, seconds=0.1),
            ChunkTiming(index=1, size=4, seconds=0.3),
        ]
        summary = summarize_chunks(chunks)
        assert summary["chunks"] == 2
        assert summary["max_seconds"] == pytest.approx(0.3)
        assert summary["mean_seconds"] == pytest.approx(0.2)
