"""Unit tests for the timing harness."""

import time

import pytest

from repro.metrics.timing import Stopwatch, TimingRow, measure_scaling


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert sw.elapsed >= 0.009


class TestTimingRow:
    def test_per_item_ms(self):
        row = TimingRow(size=100, seconds=0.5)
        assert row.per_item_ms == pytest.approx(5.0)

    def test_zero_size(self):
        assert TimingRow(size=0, seconds=1.0).per_item_ms == 0.0


class TestMeasureScaling:
    def test_rows_per_size(self):
        calls = []
        rows = measure_scaling(lambda n: calls.append(n), sizes=[1, 2, 4])
        assert [r.size for r in rows] == [1, 2, 4]
        assert calls == [1, 2, 4]

    def test_best_of_repeats(self):
        rows = measure_scaling(lambda n: None, sizes=[1], repeats=3)
        assert rows[0].seconds >= 0.0

    def test_scaling_reflects_workload(self):
        def workload(n):
            total = 0
            for i in range(n * 20_000):
                total += i

        rows = measure_scaling(workload, sizes=[1, 8])
        assert rows[1].seconds > rows[0].seconds

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            measure_scaling(lambda n: None, sizes=[0])
        with pytest.raises(ValueError):
            measure_scaling(lambda n: None, sizes=[1], repeats=0)
