"""Unit tests for the advertising-efficacy metric (Definition 5)."""

import numpy as np
import pytest

from repro.core.gaussian import NFoldGaussianMechanism
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget
from repro.core.posterior import PosteriorSelector, UniformSelector
from repro.geo.geometry import circle_overlap_fraction
from repro.geo.point import Point
from repro.metrics.efficacy import efficacy_of_report, efficacy_samples


class TestEfficacyOfReport:
    def test_perfect_report(self, rng):
        ae = efficacy_of_report(Point(0, 0), Point(0, 0), 5_000.0, rng=rng)
        assert ae == 1.0

    def test_disjoint_report(self, rng):
        ae = efficacy_of_report(Point(0, 0), Point(50_000, 0), 5_000.0, rng=rng)
        assert ae == 0.0

    def test_matches_lens_fraction(self, rng):
        """Sampling ads uniformly in AOR: AE = |AOI∩AOR| / |AOR| = lens share."""
        true, reported = Point(0, 0), Point(5_000, 0)
        ae = efficacy_of_report(true, reported, 5_000.0, ads_per_trial=40_000, rng=rng)
        expected = circle_overlap_fraction(true, reported, 5_000.0)
        assert ae == pytest.approx(expected, abs=0.01)

    def test_rejects_bad_args(self, rng):
        with pytest.raises(ValueError):
            efficacy_of_report(Point(0, 0), Point(0, 0), 0.0, rng=rng)
        with pytest.raises(ValueError):
            efficacy_of_report(Point(0, 0), Point(0, 0), 5_000.0, ads_per_trial=0, rng=rng)


class TestEfficacySamples:
    def test_shape_and_bounds(self, paper_budget):
        mech = NFoldGaussianMechanism(paper_budget, rng=default_rng(0))
        sel = UniformSelector(rng=default_rng(1))
        samples = efficacy_samples(mech, sel, trials=40, rng=default_rng(2))
        assert samples.shape == (40,)
        assert ((samples >= 0) & (samples <= 1)).all()

    def test_posterior_beats_uniform_at_large_n(self):
        """The paper's Observation 4 in miniature."""
        budget = GeoIndBudget(500.0, 1.0, 0.01, 10)
        mech_p = NFoldGaussianMechanism(budget, rng=default_rng(3))
        ae_post = efficacy_samples(
            mech_p,
            PosteriorSelector(mech_p.posterior_sigma, rng=default_rng(4)),
            trials=250,
            rng=default_rng(5),
        ).mean()
        mech_u = NFoldGaussianMechanism(budget, rng=default_rng(3))
        ae_unif = efficacy_samples(
            mech_u, UniformSelector(rng=default_rng(4)), trials=250, rng=default_rng(5)
        ).mean()
        assert ae_post > ae_unif + 0.1

    def test_rejects_bad_trials(self, paper_budget):
        mech = NFoldGaussianMechanism(paper_budget)
        with pytest.raises(ValueError):
            efficacy_samples(mech, UniformSelector(), trials=0)
