"""Regression tests: every example script must run end to end.

Examples are documentation that executes; running them in-process (module
import + ``main()``) keeps them from silently rotting as the library
evolves.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path: pathlib.Path):
    """Import an example file as a throwaway module."""
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_exist():
    """The deliverable requires at least three runnable examples."""
    assert len(EXAMPLE_FILES) >= 3


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    module = load_example(path)
    assert hasattr(module, "main"), f"{path.name} must expose main()"
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} produced no output"
