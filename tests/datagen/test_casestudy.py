"""Unit tests for the single-user case-study fixtures."""

import pytest

from repro.datagen.casestudy import make_fig2_user, make_fig4_user
from repro.profiles.checkin import SECONDS_PER_DAY
from repro.profiles.profile import LocationProfile


class TestFig2User:
    def test_paper_trace_size(self):
        user = make_fig2_user()
        assert len(user.trace) == 2_414

    def test_seven_day_span(self):
        user = make_fig2_user()
        ts = [c.timestamp for c in user.trace]
        assert max(ts) - min(ts) <= 7 * SECONDS_PER_DAY

    def test_two_dominant_locations(self):
        user = make_fig2_user()
        profile = LocationProfile.from_checkins(user.trace)
        total = profile.total_checkins
        top2_share = sum(e.frequency for e in profile.top(2)) / total
        assert top2_share > 0.8


class TestFig4User:
    def test_paper_counts(self):
        user = make_fig4_user()
        assert len(user.trace) == 1_969

    def test_top1_share_close_to_paper(self):
        """Paper: 1,628 of 1,969 check-ins at the top-1 location."""
        user = make_fig4_user()
        profile = LocationProfile.from_checkins(user.trace)
        assert profile[0].frequency == pytest.approx(1_628, rel=0.05)

    def test_custom_composition(self):
        user = make_fig4_user(n_checkins=500, top1_checkins=400)
        assert len(user.trace) == 500

    def test_rejects_impossible_composition(self):
        with pytest.raises(ValueError):
            make_fig4_user(n_checkins=100, top1_checkins=200)

    def test_deterministic(self):
        assert make_fig4_user().trace == make_fig4_user().trace
