"""Unit tests for the Shanghai study-region constants."""

import pytest

from repro.datagen.shanghai import (
    SHANGHAI_GEO_BBOX,
    SHANGHAI_PROJECTION,
    STUDY_DAYS,
    shanghai_planar_bbox,
)
from repro.geo.projection import GeoPoint


class TestShanghaiRegion:
    def test_paper_bounding_box(self):
        assert SHANGHAI_GEO_BBOX.min_lat == 30.7
        assert SHANGHAI_GEO_BBOX.max_lat == 31.4
        assert SHANGHAI_GEO_BBOX.min_lon == 121.0
        assert SHANGHAI_GEO_BBOX.max_lon == 122.0

    def test_study_spans_two_years(self):
        assert STUDY_DAYS == pytest.approx(731.0, abs=1.0)

    def test_planar_bbox_dimensions(self):
        """The box should be roughly 95 km wide and 78 km tall."""
        box = shanghai_planar_bbox()
        assert box.width == pytest.approx(95_000, rel=0.05)
        assert box.height == pytest.approx(78_000, rel=0.05)

    def test_planar_bbox_centered_on_origin(self):
        box = shanghai_planar_bbox()
        assert abs(box.center.x) < 1.0
        assert abs(box.center.y) < 1.0

    def test_projection_centered_on_region(self):
        center = SHANGHAI_PROJECTION.to_plane(GeoPoint(31.05, 121.5))
        assert abs(center.x) < 1.0
        assert abs(center.y) < 1.0
