"""Unit tests for the per-user mobility model."""

import numpy as np
import pytest

from repro.datagen.mobility import MobilityModel, TopLocation
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.profiles.checkin import SECONDS_PER_DAY


def make_model(nomadic=0.1, gps=5.0, region=None):
    return MobilityModel(
        user_id="u",
        top_locations=[
            TopLocation(Point(0, 0), 0.7, "home"),
            TopLocation(Point(5_000, 0), 0.3, "work"),
        ],
        nomadic_fraction=nomadic,
        gps_noise_m=gps,
        region=region,
    )


class TestTopLocation:
    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            TopLocation(Point(0, 0), 0.0)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            TopLocation(Point(0, 0), 1.0, "gym")


class TestMobilityModelValidation:
    def test_requires_top_locations(self):
        with pytest.raises(ValueError):
            MobilityModel(user_id="u", top_locations=[])

    def test_requires_decreasing_weights(self):
        with pytest.raises(ValueError):
            MobilityModel(
                user_id="u",
                top_locations=[
                    TopLocation(Point(0, 0), 0.3),
                    TopLocation(Point(1, 1), 0.7),
                ],
            )

    def test_rejects_bad_nomadic_fraction(self):
        with pytest.raises(ValueError):
            make_model(nomadic=1.0)


class TestGeneration:
    def test_count_and_chronology(self, rng):
        trace = make_model().generate(500, start_ts=0.0, days=30.0, rng=rng)
        assert len(trace) == 500
        ts = [c.timestamp for c in trace]
        assert ts == sorted(ts)
        assert all(0 <= t < 30 * SECONDS_PER_DAY for t in ts)

    def test_zero_checkins(self, rng):
        assert make_model().generate(0, 0.0, 1.0, rng) == []

    def test_routine_split_matches_weights(self, rng):
        trace = make_model(nomadic=0.0).generate(3_000, 0.0, 365.0, rng)
        near_home = sum(1 for c in trace if c.point.distance_to(Point(0, 0)) < 100)
        near_work = sum(
            1 for c in trace if c.point.distance_to(Point(5_000, 0)) < 100
        )
        assert near_home + near_work == 3_000
        assert near_home / 3_000 == pytest.approx(0.7, abs=0.03)

    def test_gps_noise_scale(self, rng):
        trace = make_model(nomadic=0.0, gps=15.0).generate(2_000, 0.0, 30.0, rng)
        home_pts = [c for c in trace if c.point.distance_to(Point(0, 0)) < 100]
        xs = np.array([c.x for c in home_pts])
        assert xs.std() == pytest.approx(15.0, rel=0.1)

    def test_nomadic_fraction_respected(self, rng):
        trace = make_model(nomadic=0.3).generate(3_000, 0.0, 365.0, rng)
        routine = sum(
            1
            for c in trace
            if c.point.distance_to(Point(0, 0)) < 100
            or c.point.distance_to(Point(5_000, 0)) < 100
        )
        assert 1 - routine / 3_000 == pytest.approx(0.3, abs=0.03)

    def test_nomadic_points_within_wander_radius(self, rng):
        model = make_model(nomadic=0.5)
        trace = model.generate(1_000, 0.0, 30.0, rng)
        max_dist = max(c.point.distance_to(Point(0, 0)) for c in trace)
        assert max_dist <= model.nomadic_radius_m + 5_100  # work anchor offset

    def test_region_clamp(self, rng):
        region = BoundingBox(-1_000, -1_000, 1_000, 1_000)
        model = make_model(region=region)
        trace = model.generate(500, 0.0, 30.0, rng)
        assert all(region.contains(c.point) for c in trace)

    def test_diurnal_pattern(self, rng):
        """Home check-ins land at night/morning, work during office hours."""
        trace = make_model(nomadic=0.0, gps=1.0).generate(4_000, 0.0, 365.0, rng)
        for c in trace:
            hour = (c.timestamp % SECONDS_PER_DAY) / 3_600.0
            if c.point.distance_to(Point(0, 0)) < 100:
                assert hour < 8.0 or hour >= 19.0
            else:
                assert 9.0 <= hour < 18.0

    def test_rejects_bad_generate_args(self, rng):
        with pytest.raises(ValueError):
            make_model().generate(-1, 0.0, 1.0, rng)
        with pytest.raises(ValueError):
            make_model().generate(1, 0.0, 0.0, rng)

    def test_true_top_points_ordered(self):
        assert make_model().true_top_points == [Point(0, 0), Point(5_000, 0)]
