"""Unit tests for the trace obfuscation deployment helpers."""

import numpy as np
import pytest

from repro.core.gaussian import GaussianMechanism, NFoldGaussianMechanism
from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget, OneTimeBudget
from repro.core.posterior import PosteriorSelector, UniformSelector
from repro.datagen.obfuscate import one_time_obfuscate, permanent_obfuscate
from repro.geo.point import Point
from repro.profiles.checkin import CheckIn


def trace_at(point, count, t0=0.0):
    return [CheckIn(t0 + i, point) for i in range(count)]


class TestOneTimeObfuscate:
    def test_preserves_timestamps_and_length(self, rng):
        mech = PlanarLaplaceMechanism(OneTimeBudget(0.01), rng=rng)
        trace = trace_at(Point(0, 0), 50)
        out = one_time_obfuscate(trace, mech)
        assert len(out) == 50
        assert [c.timestamp for c in out] == [c.timestamp for c in trace]

    def test_locations_actually_perturbed(self, rng):
        mech = PlanarLaplaceMechanism(OneTimeBudget(0.01), rng=rng)
        out = one_time_obfuscate(trace_at(Point(0, 0), 20), mech)
        assert all(c.point != Point(0, 0) for c in out)

    def test_perturbations_independent(self, rng):
        mech = PlanarLaplaceMechanism(OneTimeBudget(0.01), rng=rng)
        out = one_time_obfuscate(trace_at(Point(0, 0), 50), mech)
        assert len({(c.x, c.y) for c in out}) == 50

    def test_rejects_multi_output_mechanism(self, paper_budget):
        mech = NFoldGaussianMechanism(paper_budget)
        with pytest.raises(ValueError):
            one_time_obfuscate(trace_at(Point(0, 0), 5), mech)

    def test_empty_trace(self, rng):
        mech = PlanarLaplaceMechanism(OneTimeBudget(0.01), rng=rng)
        assert one_time_obfuscate([], mech) == []


class TestPermanentObfuscate:
    def test_top_checkins_limited_to_candidate_set(self, rng, paper_budget):
        mech = NFoldGaussianMechanism(paper_budget, rng=rng)
        selector = UniformSelector(rng=rng)
        home = Point(0, 0)
        trace = trace_at(home, 200)
        out = permanent_obfuscate(trace, [home], mech, selector)
        distinct = {(c.x, c.y) for c in out}
        # Every report must come from the pinned 10-candidate set.
        assert len(distinct) <= 10

    def test_nomadic_checkins_fresh_noise(self, rng, paper_budget):
        mech = NFoldGaussianMechanism(paper_budget, rng=rng)
        nomadic_mech = GaussianMechanism(paper_budget.with_n(1), rng=rng)
        selector = UniformSelector(rng=rng)
        home = Point(0, 0)
        far = Point(50_000, 0)
        trace = trace_at(home, 10) + trace_at(far, 10, t0=100)
        out = permanent_obfuscate(
            trace, [home], mech, selector, nomadic_mechanism=nomadic_mech
        )
        nomadic_reports = {(c.x, c.y) for c in out[10:]}
        assert len(nomadic_reports) == 10  # all fresh draws

    def test_match_radius_controls_top_detection(self, rng, paper_budget):
        mech = NFoldGaussianMechanism(paper_budget, rng=rng)
        selector = UniformSelector(rng=rng)
        home = Point(0, 0)
        nearby = Point(80, 0)
        trace = trace_at(nearby, 50)
        tight = permanent_obfuscate(
            trace, [home], mech, selector, match_radius=50.0,
            nomadic_mechanism=GaussianMechanism(paper_budget.with_n(1), rng=rng),
        )
        loose = permanent_obfuscate(
            trace, [home], mech, selector, match_radius=100.0
        )
        assert len({(c.x, c.y) for c in tight}) == 50  # all nomadic
        assert len({(c.x, c.y) for c in loose}) <= 10  # all pinned

    def test_rejects_bad_match_radius(self, rng, paper_budget):
        mech = NFoldGaussianMechanism(paper_budget, rng=rng)
        with pytest.raises(ValueError):
            permanent_obfuscate([], [], mech, UniformSelector(), match_radius=0.0)

    def test_preserves_order_and_timestamps(self, rng, paper_budget):
        mech = NFoldGaussianMechanism(paper_budget, rng=rng)
        selector = PosteriorSelector(mech.posterior_sigma, rng=rng)
        trace = trace_at(Point(0, 0), 30)
        out = permanent_obfuscate(trace, [Point(0, 0)], mech, selector)
        assert [c.timestamp for c in out] == [c.timestamp for c in trace]
