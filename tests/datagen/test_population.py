"""Unit + calibration tests for the synthetic population generator."""

import numpy as np
import pytest

from repro.attack.profiling import entropy_vs_checkins, fraction_below_entropy
from repro.datagen.population import (
    FIG3_ENTROPY_MARGINAL,
    PAPER_MAX_CHECKINS,
    PAPER_MIN_CHECKINS,
    PopulationConfig,
    figure3_marginals,
    generate_population,
    iter_population,
    rake_figure3_joint,
    rake_marginals,
)
from repro.datagen.shanghai import shanghai_planar_bbox


class TestConfigValidation:
    def test_defaults_valid(self):
        PopulationConfig()

    def test_rejects_bad_users(self):
        with pytest.raises(ValueError):
            PopulationConfig(n_users=0)

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            PopulationConfig(min_checkins=100, max_checkins=10)


class TestGeneration:
    def test_user_count_and_ids_unique(self, tiny_population):
        assert len(tiny_population) == 12
        ids = {u.user_id for u in tiny_population}
        assert len(ids) == 12

    def test_checkin_counts_within_paper_bounds(self, tiny_population):
        for u in tiny_population:
            assert PAPER_MIN_CHECKINS <= u.n_checkins <= PAPER_MAX_CHECKINS

    def test_traces_chronological(self, tiny_population):
        for u in tiny_population:
            ts = [c.timestamp for c in u.trace]
            assert ts == sorted(ts)

    def test_all_checkins_inside_region(self, tiny_population):
        region = shanghai_planar_bbox()
        for u in tiny_population:
            assert all(region.contains(c.point) for c in u.trace)

    def test_true_tops_nonempty_and_ordered(self, tiny_population):
        for u in tiny_population:
            weights = [t.weight for t in u.model.top_locations]
            assert weights == sorted(weights, reverse=True)
            assert 1 <= len(u.true_tops) <= 4

    def test_deterministic_given_seed(self):
        a = generate_population(PopulationConfig(n_users=3, seed=7))
        b = generate_population(PopulationConfig(n_users=3, seed=7))
        for ua, ub in zip(a, b):
            assert ua.trace == ub.trace

    def test_different_seeds_differ(self):
        a = generate_population(PopulationConfig(n_users=3, seed=7))
        b = generate_population(PopulationConfig(n_users=3, seed=8))
        assert any(ua.trace != ub.trace for ua, ub in zip(a, b))

    def test_iter_population_streams_same_users(self):
        config = PopulationConfig(n_users=4, seed=13)
        eager = generate_population(config)
        lazy = list(iter_population(config))
        assert [u.user_id for u in eager] == [u.user_id for u in lazy]


class TestCalibration:
    """The generator must reproduce the paper's aggregate statistics."""

    @pytest.fixture(scope="class")
    def population(self):
        return generate_population(PopulationConfig(n_users=250, seed=42))

    def test_fraction_below_entropy_2(self, population):
        """Paper: 88.8% of users have location entropy < 2."""
        obs = entropy_vs_checkins({u.user_id: u.trace for u in population})
        frac = fraction_below_entropy(obs, 2.0)
        assert 0.78 <= frac <= 0.97

    def test_entropy_declines_with_checkins(self, population):
        """Paper Figure 3: more check-ins -> lower entropy."""
        obs = entropy_vs_checkins({u.user_id: u.trace for u in population})
        light = [o.entropy for o in obs if o.checkins < 200]
        heavy = [o.entropy for o in obs if o.checkins >= 1_000]
        assert light and heavy
        assert np.mean(heavy) < np.mean(light)

    def test_count_distribution_heavy_tailed(self, population):
        counts = np.array([u.n_checkins for u in population])
        assert np.median(counts) < counts.mean()
        assert counts.max() > 2_000


class TestRakeMarginals:
    """IPF raking must converge onto the requested marginals."""

    def test_converges_to_exact_marginals(self):
        rng = np.random.default_rng(7)
        seed = rng.uniform(0.1, 1.0, size=(4, 3))
        rows = np.array([0.4, 0.3, 0.2, 0.1])
        cols = np.array([0.5, 0.3, 0.2])
        fitted, iters, err = rake_marginals(seed, rows, cols)
        assert iters <= 500
        assert err <= 1e-10
        np.testing.assert_allclose(fitted.sum(axis=1), rows, atol=1e-9)
        np.testing.assert_allclose(fitted.sum(axis=0), cols, atol=1e-9)

    def test_preserves_cross_ratios(self):
        """The IPF fixed point keeps the seed's odds structure."""
        rng = np.random.default_rng(11)
        seed = rng.uniform(0.5, 2.0, size=(3, 3))
        fitted, _, _ = rake_marginals(
            seed, np.full(3, 1 / 3), np.full(3, 1 / 3)
        )
        for i, j in [(0, 1), (1, 2)]:
            seed_odds = (seed[i, i] * seed[j, j]) / (seed[i, j] * seed[j, i])
            fit_odds = (fitted[i, i] * fitted[j, j]) / (fitted[i, j] * fitted[j, i])
            assert fit_odds == pytest.approx(seed_odds, rel=1e-8)

    def test_zero_cells_stay_zero(self):
        seed = np.array([[1.0, 0.0], [1.0, 1.0]])
        fitted, _, _ = rake_marginals(
            seed, np.array([0.4, 0.6]), np.array([0.7, 0.3])
        )
        assert fitted[0, 1] == 0.0
        np.testing.assert_allclose(
            fitted, [[0.4, 0.0], [0.3, 0.3]], atol=1e-9
        )

    def test_rejects_mismatched_totals(self):
        with pytest.raises(ValueError, match="totals disagree"):
            rake_marginals(np.ones((2, 2)), [0.6, 0.6], [0.5, 0.5])

    def test_rejects_infeasible_zero_row(self):
        seed = np.array([[0.0, 0.0], [1.0, 1.0]])
        with pytest.raises(ValueError, match="zero seed row"):
            rake_marginals(seed, [0.5, 0.5], [0.5, 0.5])

    def test_unreachable_targets_raise_after_max_iters(self):
        # A diagonal zero pattern cannot carry these marginals: row 0 must
        # put all its mass in column 0, but column 0 wants less than that.
        seed = np.array([[1.0, 0.0], [0.0, 1.0]])
        with pytest.raises(RuntimeError, match="did not converge"):
            rake_marginals(seed, [0.7, 0.3], [0.3, 0.7], max_iters=50)

    def test_figure3_marginals_are_distributions(self):
        edges, counts, entropy = figure3_marginals()
        assert edges[0] == PAPER_MIN_CHECKINS
        assert edges[-1] == PAPER_MAX_CHECKINS
        assert counts.sum() == pytest.approx(1.0)
        assert tuple(entropy) == FIG3_ENTROPY_MARGINAL

    def test_rake_figure3_joint_hits_paper_split(self):
        """Raking an empirical joint pins the 88.8% low-entropy share."""
        population = generate_population(PopulationConfig(n_users=120, seed=3))
        edges, _, _ = figure3_marginals()
        obs = entropy_vs_checkins({u.user_id: u.trace for u in population})
        joint = np.zeros((len(edges) - 1, 2))
        for o in obs:
            row = min(np.searchsorted(edges, o.checkins, side="right") - 1,
                      len(edges) - 2)
            joint[row, 0 if o.entropy < 2.0 else 1] += 1.0
        fitted, _, err = rake_figure3_joint(joint)
        assert err <= 1e-10
        assert fitted[:, 0].sum() == pytest.approx(0.888)
        # Figure 3's trend survives the raking: the heaviest count bin is
        # more routine-bound than the lightest.
        low_share = fitted[:, 0] / fitted.sum(axis=1)
        assert low_share[-1] >= low_share[0]
