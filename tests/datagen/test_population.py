"""Unit + calibration tests for the synthetic population generator."""

import numpy as np
import pytest

from repro.attack.profiling import entropy_vs_checkins, fraction_below_entropy
from repro.datagen.population import (
    PAPER_MAX_CHECKINS,
    PAPER_MIN_CHECKINS,
    PopulationConfig,
    generate_population,
    iter_population,
)
from repro.datagen.shanghai import shanghai_planar_bbox


class TestConfigValidation:
    def test_defaults_valid(self):
        PopulationConfig()

    def test_rejects_bad_users(self):
        with pytest.raises(ValueError):
            PopulationConfig(n_users=0)

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            PopulationConfig(min_checkins=100, max_checkins=10)


class TestGeneration:
    def test_user_count_and_ids_unique(self, tiny_population):
        assert len(tiny_population) == 12
        ids = {u.user_id for u in tiny_population}
        assert len(ids) == 12

    def test_checkin_counts_within_paper_bounds(self, tiny_population):
        for u in tiny_population:
            assert PAPER_MIN_CHECKINS <= u.n_checkins <= PAPER_MAX_CHECKINS

    def test_traces_chronological(self, tiny_population):
        for u in tiny_population:
            ts = [c.timestamp for c in u.trace]
            assert ts == sorted(ts)

    def test_all_checkins_inside_region(self, tiny_population):
        region = shanghai_planar_bbox()
        for u in tiny_population:
            assert all(region.contains(c.point) for c in u.trace)

    def test_true_tops_nonempty_and_ordered(self, tiny_population):
        for u in tiny_population:
            weights = [t.weight for t in u.model.top_locations]
            assert weights == sorted(weights, reverse=True)
            assert 1 <= len(u.true_tops) <= 4

    def test_deterministic_given_seed(self):
        a = generate_population(PopulationConfig(n_users=3, seed=7))
        b = generate_population(PopulationConfig(n_users=3, seed=7))
        for ua, ub in zip(a, b):
            assert ua.trace == ub.trace

    def test_different_seeds_differ(self):
        a = generate_population(PopulationConfig(n_users=3, seed=7))
        b = generate_population(PopulationConfig(n_users=3, seed=8))
        assert any(ua.trace != ub.trace for ua, ub in zip(a, b))

    def test_iter_population_streams_same_users(self):
        config = PopulationConfig(n_users=4, seed=13)
        eager = generate_population(config)
        lazy = list(iter_population(config))
        assert [u.user_id for u in eager] == [u.user_id for u in lazy]


class TestCalibration:
    """The generator must reproduce the paper's aggregate statistics."""

    @pytest.fixture(scope="class")
    def population(self):
        return generate_population(PopulationConfig(n_users=250, seed=42))

    def test_fraction_below_entropy_2(self, population):
        """Paper: 88.8% of users have location entropy < 2."""
        obs = entropy_vs_checkins({u.user_id: u.trace for u in population})
        frac = fraction_below_entropy(obs, 2.0)
        assert 0.78 <= frac <= 0.97

    def test_entropy_declines_with_checkins(self, population):
        """Paper Figure 3: more check-ins -> lower entropy."""
        obs = entropy_vs_checkins({u.user_id: u.trace for u in population})
        light = [o.entropy for o in obs if o.checkins < 200]
        heavy = [o.entropy for o in obs if o.checkins >= 1_000]
        assert light and heavy
        assert np.mean(heavy) < np.mean(light)

    def test_count_distribution_heavy_tailed(self, population):
        counts = np.array([u.n_checkins for u in population])
        assert np.median(counts) < counts.mean()
        assert counts.max() > 2_000
