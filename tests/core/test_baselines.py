"""Unit tests for the two baseline multi-output mechanisms."""

import numpy as np
import pytest

from repro.core.baselines import (
    NaivePostProcessingMechanism,
    PlainCompositionMechanism,
)
from repro.core.calibration import gaussian_sigma_composition, gaussian_sigma_single
from repro.core.gaussian import NFoldGaussianMechanism
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget
from repro.geo.point import Point, points_to_array


class TestNaivePostProcessing:
    def test_output_count(self, paper_budget):
        m = NaivePostProcessingMechanism(paper_budget, rng=default_rng(0))
        assert len(m.obfuscate(Point(0, 0))) == 10

    def test_sigma_is_single_fold(self, paper_budget):
        """Post-processing spends only one 1-fold release of budget."""
        m = NaivePostProcessingMechanism(paper_budget)
        assert m.sigma == pytest.approx(gaussian_sigma_single(500, 1.0, 0.01))

    def test_default_scatter_radius_is_sigma(self, paper_budget):
        m = NaivePostProcessingMechanism(paper_budget)
        assert m.scatter_radius == pytest.approx(m.sigma)

    def test_candidates_cluster_around_one_anchor(self, paper_budget):
        """All candidates must lie within scatter_radius of a common anchor."""
        m = NaivePostProcessingMechanism(paper_budget, rng=default_rng(3))
        outs = points_to_array(m.obfuscate(Point(0, 0)))
        spread = np.hypot(
            outs[:, 0] - outs[:, 0].mean(), outs[:, 1] - outs[:, 1].mean()
        ).max()
        assert spread <= 2 * m.scatter_radius

    def test_custom_scatter_radius(self, paper_budget):
        m = NaivePostProcessingMechanism(
            paper_budget, scatter_radius=10.0, rng=default_rng(4)
        )
        outs = points_to_array(m.obfuscate(Point(0, 0)))
        spread = np.hypot(
            outs[:, 0] - outs[:, 0].mean(), outs[:, 1] - outs[:, 1].mean()
        ).max()
        assert spread <= 20.0

    def test_rejects_bad_scatter(self, paper_budget):
        with pytest.raises(ValueError):
            NaivePostProcessingMechanism(paper_budget, scatter_radius=0.0)

    def test_tail_radius_is_conservative(self, rng, paper_budget):
        m = NaivePostProcessingMechanism(paper_budget, rng=rng)
        r05 = m.noise_tail_radius(0.05)
        center = Point(0, 0)
        exceeded = 0
        total = 0
        for _ in range(300):
            for out in m.obfuscate(center):
                total += 1
                if center.distance_to(out) > r05:
                    exceeded += 1
        assert exceeded / total <= 0.05 + 0.01


class TestPlainComposition:
    def test_output_count(self, paper_budget):
        m = PlainCompositionMechanism(paper_budget, rng=default_rng(0))
        assert len(m.obfuscate(Point(0, 0))) == 10

    def test_sigma_matches_split_budget(self, paper_budget):
        m = PlainCompositionMechanism(paper_budget)
        assert m.sigma == pytest.approx(gaussian_sigma_composition(500, 1.0, 0.01, 10))

    def test_noisier_than_nfold(self, paper_budget):
        comp = PlainCompositionMechanism(paper_budget)
        nfold = NFoldGaussianMechanism(paper_budget)
        assert comp.sigma > nfold.sigma

    def test_n1_equivalent_to_nfold_n1(self):
        b = GeoIndBudget(500, 1.0, 0.01, 1)
        assert PlainCompositionMechanism(b).sigma == pytest.approx(
            NFoldGaussianMechanism(b).sigma
        )

    def test_outputs_independent_spread(self, rng, paper_budget):
        """Composition candidates scatter at their (large) per-output sigma."""
        m = PlainCompositionMechanism(paper_budget, rng=rng)
        outs = points_to_array(m.obfuscate(Point(0, 0)))
        # With sigma ~18.7 km, candidates should not all huddle within 5 km.
        spread = np.hypot(outs[:, 0], outs[:, 1])
        assert spread.max() > 5_000.0
