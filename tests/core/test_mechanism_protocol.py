"""The canonical Mechanism protocol shared by every shipped mechanism."""

import numpy as np
import pytest

from repro.core import Mechanism
from repro.core.gaussian import GaussianMechanism, NFoldGaussianMechanism
from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget


def _budget(n):
    return GeoIndBudget(r=500.0, epsilon=1.0, delta=0.01, n=n)


class TestProtocol:
    @pytest.mark.parametrize(
        "mechanism",
        [
            GaussianMechanism(_budget(1)),
            NFoldGaussianMechanism(_budget(10)),
            PlanarLaplaceMechanism.from_level(np.log(2), 200.0),
        ],
    )
    def test_shipped_mechanisms_satisfy_protocol(self, mechanism):
        assert isinstance(mechanism, Mechanism)

    def test_batch_shape_contract(self):
        locations = np.zeros((6, 2))
        single = GaussianMechanism(_budget(1), rng=default_rng(0))
        assert single.obfuscate_batch(locations).shape == (6, 2)
        nfold = NFoldGaussianMechanism(_budget(4), rng=default_rng(0))
        assert nfold.obfuscate_batch(locations).shape == (6, 4, 2)

    def test_obfuscate_many_alias_is_gone(self):
        # The one-release deprecation shim has been removed; obfuscate_batch
        # is the only columnar entry point.
        assert not hasattr(NFoldGaussianMechanism(_budget(3)), "obfuscate_many")

    @pytest.mark.filterwarnings("error::DeprecationWarning")
    def test_canonical_name_does_not_warn(self):
        NFoldGaussianMechanism(_budget(3), rng=default_rng(0)).obfuscate_batch(
            np.zeros((2, 2))
        )
