"""Unit tests for the planar Laplace mechanism (one-time geo-IND)."""

import math

import numpy as np
import pytest

from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.mechanism import default_rng
from repro.core.params import OneTimeBudget
from repro.geo.point import Point


class TestConstruction:
    def test_from_level_paper_setting(self):
        m = PlanarLaplaceMechanism.from_level(math.log(2), 200.0)
        assert m.epsilon == pytest.approx(math.log(2) / 200.0)

    def test_single_output(self):
        m = PlanarLaplaceMechanism(OneTimeBudget(0.01), rng=default_rng(0))
        assert m.n_outputs == 1
        assert len(m.obfuscate(Point(0, 0))) == 1


class TestNoiseDistribution:
    def test_mean_distance_matches_theory(self, rng):
        """Planar Laplace mean radius is 2/eps."""
        eps = math.log(4) / 200.0
        m = PlanarLaplaceMechanism(OneTimeBudget(eps), rng=rng)
        center = Point(0, 0)
        dists = [center.distance_to(m.obfuscate(center)[0]) for _ in range(5000)]
        assert np.mean(dists) == pytest.approx(2 / eps, rel=0.05)

    def test_batch_matches_scalar_distribution(self, rng):
        eps = 0.005
        m = PlanarLaplaceMechanism(OneTimeBudget(eps), rng=rng)
        coords = np.zeros((5000, 2))
        noisy = m.obfuscate_batch(coords)
        radii = np.hypot(noisy[:, 0], noisy[:, 1])
        assert radii.mean() == pytest.approx(2 / eps, rel=0.05)

    def test_batch_preserves_offsets(self, rng):
        eps = 0.01
        m = PlanarLaplaceMechanism(OneTimeBudget(eps), rng=rng)
        coords = np.array([[0.0, 0.0], [10_000.0, 0.0]]).repeat(2000, axis=0)
        noisy = m.obfuscate_batch(coords)
        left = noisy[coords[:, 0] == 0.0]
        right = noisy[coords[:, 0] == 10_000.0]
        assert left[:, 0].mean() == pytest.approx(0.0, abs=50)
        assert right[:, 0].mean() == pytest.approx(10_000.0, abs=50)


class TestTailRadius:
    def test_tail_radius_bounds_noise(self, rng):
        m = PlanarLaplaceMechanism(OneTimeBudget(0.01), rng=rng)
        r05 = m.noise_tail_radius(0.05)
        center = Point(0, 0)
        dists = np.array(
            [center.distance_to(m.obfuscate(center)[0]) for _ in range(4000)]
        )
        assert (dists > r05).mean() == pytest.approx(0.05, abs=0.015)

    def test_tail_radius_monotone_in_alpha(self):
        m = PlanarLaplaceMechanism(OneTimeBudget(0.01))
        assert m.noise_tail_radius(0.01) > m.noise_tail_radius(0.1)

    def test_rejects_bad_alpha(self):
        m = PlanarLaplaceMechanism(OneTimeBudget(0.01))
        with pytest.raises(ValueError):
            m.noise_tail_radius(1.5)


class TestGeoIndProperty:
    def test_empirical_geo_ind_ratio(self, rng):
        """Histogram likelihood-ratio check of Definition 1 on real samples.

        For two nearby locations p0, p1 the output density ratio must stay
        within exp(eps * d(p0, p1)) on every coarse histogram cell with
        enough mass.
        """
        eps = 0.01
        d = 100.0
        m = PlanarLaplaceMechanism(OneTimeBudget(eps), rng=rng)
        n = 60_000
        out0 = m.obfuscate_batch(np.tile([0.0, 0.0], (n, 1)))
        out1 = m.obfuscate_batch(np.tile([d, 0.0], (n, 1)))
        bound = math.exp(eps * d) * 1.35  # sampling slack
        edges = np.linspace(-400, 400, 9)
        h0, _, _ = np.histogram2d(out0[:, 0], out0[:, 1], bins=[edges, edges])
        h1, _, _ = np.histogram2d(out1[:, 0], out1[:, 1], bins=[edges, edges])
        mask = (h0 >= 50) & (h1 >= 50)
        ratios = h0[mask] / h1[mask]
        assert (ratios <= bound).all()
        assert (ratios >= 1 / bound).all()
