"""Unit tests for the sigma calibration formulas (Lemma 1 / Theorem 2)."""

import math

import pytest

from repro.core.calibration import (
    gaussian_sigma_composition,
    gaussian_sigma_nfold,
    gaussian_sigma_single,
    sigma_for_budget,
)
from repro.core.params import GeoIndBudget


class TestSingleSigma:
    def test_matches_lemma1_formula(self):
        r, eps, delta = 500.0, 1.0, 0.01
        expected = (r / eps) * math.sqrt(math.log(1 / delta**2) + eps)
        assert gaussian_sigma_single(r, eps, delta) == pytest.approx(expected)

    def test_scales_linearly_with_r(self):
        s1 = gaussian_sigma_single(500, 1.0, 0.01)
        s2 = gaussian_sigma_single(1000, 1.0, 0.01)
        assert s2 == pytest.approx(2 * s1)

    def test_decreases_with_epsilon(self):
        assert gaussian_sigma_single(500, 1.5, 0.01) < gaussian_sigma_single(
            500, 1.0, 0.01
        )

    def test_decreases_with_delta(self):
        assert gaussian_sigma_single(500, 1.0, 0.1) < gaussian_sigma_single(
            500, 1.0, 0.01
        )

    @pytest.mark.parametrize(
        "args", [(0, 1, 0.01), (500, 0, 0.01), (500, 1, 0.0), (500, 1, 1.0)]
    )
    def test_rejects_invalid(self, args):
        with pytest.raises(ValueError):
            gaussian_sigma_single(*args)


class TestNFoldSigma:
    def test_sqrt_n_scaling(self):
        s1 = gaussian_sigma_single(500, 1.0, 0.01)
        for n in (1, 2, 5, 10, 100):
            assert gaussian_sigma_nfold(500, 1.0, 0.01, n) == pytest.approx(
                math.sqrt(n) * s1
            )

    def test_paper_headline_value(self):
        """sigma for (500 m, eps=1, delta=0.01, n=10) is about 5.05 km."""
        sigma = gaussian_sigma_nfold(500, 1.0, 0.01, 10)
        assert sigma == pytest.approx(5052.3, abs=0.5)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            gaussian_sigma_nfold(500, 1.0, 0.01, 0)


class TestCompositionSigma:
    def test_n1_matches_single(self):
        assert gaussian_sigma_composition(500, 1.0, 0.01, 1) == pytest.approx(
            gaussian_sigma_single(500, 1.0, 0.01)
        )

    def test_composition_always_noisier_for_n_gt_1(self):
        for n in (2, 5, 10):
            assert gaussian_sigma_composition(500, 1.0, 0.01, n) > gaussian_sigma_nfold(
                500, 1.0, 0.01, n
            )

    def test_superlinear_growth(self):
        """Composition sigma grows faster than linearly in n."""
        s2 = gaussian_sigma_composition(500, 1.0, 0.01, 2)
        s4 = gaussian_sigma_composition(500, 1.0, 0.01, 4)
        assert s4 > 2 * s2 * 0.99  # ~linear in n, vs sqrt(2) for n-fold

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            gaussian_sigma_composition(500, 1.0, 0.01, 0)


class TestSigmaForBudget:
    def test_delegates_to_nfold(self):
        b = GeoIndBudget(500, 1.0, 0.01, 10)
        assert sigma_for_budget(b) == pytest.approx(
            gaussian_sigma_nfold(500, 1.0, 0.01, 10)
        )
