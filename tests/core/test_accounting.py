"""Unit tests for privacy accounting."""

import math

import pytest

from repro.core.accounting import (
    LongitudinalExposureAccountant,
    composition_vs_sufficient_statistic,
)


class TestLongitudinalAccountant:
    def test_single_observation(self):
        acc = LongitudinalExposureAccountant()
        acc.observe(0.01)
        assert acc.total_epsilon == pytest.approx(0.01)
        assert acc.observations == 1

    def test_bulk_observations_compose_linearly(self):
        acc = LongitudinalExposureAccountant()
        acc.observe(math.log(2) / 200.0, count=1000)
        # After 1,000 observations, the effective level at 200 m is
        # 1000 * ln 2 — no meaningful protection.
        assert acc.effective_level(200.0) == pytest.approx(1000 * math.log(2))

    def test_mixed_budgets_accumulate(self):
        acc = LongitudinalExposureAccountant()
        acc.observe(0.01, count=2)
        acc.observe(0.02)
        assert acc.total_epsilon == pytest.approx(0.04)

    def test_reset(self):
        acc = LongitudinalExposureAccountant()
        acc.observe(0.01)
        acc.reset()
        assert acc.observations == 0
        assert acc.total_epsilon == 0.0

    def test_rejects_invalid(self):
        acc = LongitudinalExposureAccountant()
        with pytest.raises(ValueError):
            acc.observe(0.0)
        with pytest.raises(ValueError):
            acc.observe(0.01, count=0)
        with pytest.raises(ValueError):
            acc.effective_level(0.0)


class TestSigmaComparison:
    def test_saving_factor_at_n1_is_one(self):
        cmp1 = composition_vs_sufficient_statistic(500, 1.0, 0.01, 1)
        assert cmp1.saving_factor == pytest.approx(1.0)

    def test_saving_grows_with_n(self):
        savings = [
            composition_vs_sufficient_statistic(500, 1.0, 0.01, n).saving_factor
            for n in (1, 2, 5, 10)
        ]
        assert savings == sorted(savings)
        assert savings[-1] > 3.0

    def test_saving_roughly_sqrt_n(self):
        cmp10 = composition_vs_sufficient_statistic(500, 1.0, 0.01, 10)
        # sigma_comp ~ n-linear, sigma_suff ~ sqrt(n): ratio >= sqrt(n).
        assert cmp10.saving_factor >= math.sqrt(10)
