"""Unit tests for the privacy budget ledger."""

import pytest

from repro.core.ledger import BudgetExceededError, PrivacyLedger
from repro.core.params import GeoIndBudget


BUDGET = GeoIndBudget(r=500.0, epsilon=1.0, delta=0.01, n=10)


class TestPrivacyLedger:
    def test_uncapped_ledger_accumulates(self):
        ledger = PrivacyLedger()
        ledger.spend(BUDGET)
        ledger.spend(BUDGET)
        assert ledger.total_epsilon == pytest.approx(2.0)
        assert ledger.total_delta == pytest.approx(0.02)
        assert ledger.spends == 2

    def test_epsilon_cap_enforced(self):
        ledger = PrivacyLedger(max_epsilon=2.5)
        ledger.spend(BUDGET)
        ledger.spend(BUDGET)
        assert not ledger.can_spend(BUDGET)
        with pytest.raises(BudgetExceededError):
            ledger.spend(BUDGET)
        assert ledger.spends == 2  # failed spend not recorded

    def test_delta_cap_enforced(self):
        ledger = PrivacyLedger(max_delta=0.015)
        ledger.spend(BUDGET)
        with pytest.raises(BudgetExceededError):
            ledger.spend(BUDGET)

    def test_exact_cap_allowed(self):
        ledger = PrivacyLedger(max_epsilon=2.0)
        ledger.spend(BUDGET)
        ledger.spend(BUDGET)
        assert ledger.total_epsilon == pytest.approx(2.0)

    def test_remaining_epsilon(self):
        ledger = PrivacyLedger(max_epsilon=3.0)
        ledger.spend(BUDGET)
        assert ledger.remaining_epsilon() == pytest.approx(2.0)
        assert PrivacyLedger().remaining_epsilon() == float("inf")

    def test_remaining_spends(self):
        ledger = PrivacyLedger(max_epsilon=3.05, max_delta=1e-1)
        assert ledger.remaining_spends(BUDGET) == 3
        ledger.spend(BUDGET)
        assert ledger.remaining_spends(BUDGET) == 2

    def test_entry_metadata(self):
        ledger = PrivacyLedger()
        entry = ledger.spend(BUDGET, label="home", timestamp=42.0)
        assert entry.label == "home"
        assert entry.timestamp == 42.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PrivacyLedger(max_epsilon=0.0)
        with pytest.raises(ValueError):
            PrivacyLedger(max_delta=1.5)


class TestLedgerInObfuscationModule:
    def test_module_respects_cap(self):
        from repro.core.gaussian import NFoldGaussianMechanism
        from repro.core.mechanism import default_rng
        from repro.edge.obfuscation import ObfuscationModule
        from repro.geo.point import Point

        mech = NFoldGaussianMechanism(BUDGET, rng=default_rng(0))
        ledger = PrivacyLedger(max_epsilon=2.0)
        module = ObfuscationModule(mech, ledger=ledger)
        tops = [Point(0, 0), Point(10_000, 0), Point(20_000, 0)]
        module.ensure_obfuscated(tops)
        assert module.obfuscation_count == 2
        assert module.skipped_by_ledger == 1
        # Already-pinned locations keep working after the cap.
        assert module.candidates_for(Point(0, 0)) is not None
        assert module.candidates_for(Point(20_000, 0)) is None
