"""Unit tests for the analytic and empirical geo-IND verification tools."""

import math

import numpy as np
import pytest

from repro.core.calibration import gaussian_sigma_nfold, gaussian_sigma_single
from repro.core.verification import (
    empirical_privacy_check,
    gaussian_delta,
    verify_gaussian_geo_ind,
)


class TestGaussianDelta:
    def test_zero_distance_means_zero_delta(self):
        assert gaussian_delta(0.0, 100.0, 1.0) == 0.0

    def test_delta_decreases_with_scale(self):
        d1 = gaussian_delta(500, 1_000, 1.0)
        d2 = gaussian_delta(500, 2_000, 1.0)
        assert d2 < d1

    def test_delta_decreases_with_epsilon(self):
        assert gaussian_delta(500, 1_000, 2.0) < gaussian_delta(500, 1_000, 0.5)

    def test_delta_increases_with_distance(self):
        assert gaussian_delta(1_000, 1_000, 1.0) > gaussian_delta(100, 1_000, 1.0)

    def test_delta_in_unit_interval(self):
        for dist in (10, 500, 5_000):
            for scale in (100, 1_000):
                v = gaussian_delta(dist, scale, 1.0)
                assert 0.0 <= v <= 1.0

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            gaussian_delta(1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            gaussian_delta(-1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            gaussian_delta(1.0, 1.0, -1.0)


class TestAnalyticVerification:
    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 1.5])
    @pytest.mark.parametrize("r", [500.0, 800.0])
    @pytest.mark.parametrize("n", [1, 3, 10])
    def test_calibrated_sigma_satisfies_budget(self, r, epsilon, n):
        """Theorem 2's sigma must pass the tight Gaussian trade-off check."""
        delta = 0.01
        sigma = gaussian_sigma_nfold(r, epsilon, delta, n)
        assert verify_gaussian_geo_ind(r, epsilon, delta, n, sigma)

    def test_undersized_sigma_fails(self):
        """A sigma far below calibration must violate the budget."""
        r, eps, delta, n = 500.0, 1.0, 0.01, 10
        sigma = gaussian_sigma_nfold(r, eps, delta, n) / 20.0
        assert not verify_gaussian_geo_ind(r, eps, delta, n, sigma)

    def test_lemma1_not_wastefully_loose(self):
        """Calibration should be within ~10x of the tight requirement.

        (Lemma 1 is a sufficient condition, so some slack is expected, but
        wild overshoot would indicate a formula bug.)
        """
        r, eps, delta = 500.0, 1.0, 0.01
        sigma = gaussian_sigma_single(r, eps, delta)
        assert not verify_gaussian_geo_ind(r, eps, delta, 1, sigma / 10.0)


class TestEmpiricalCheck:
    def test_calibrated_mechanism_passes(self, rng):
        r, eps, delta, n = 500.0, 1.0, 0.01, 10
        sigma = gaussian_sigma_nfold(r, eps, delta, n)
        report = empirical_privacy_check(
            r, eps, delta, n, sigma, samples=60_000, rng=rng
        )
        assert report.satisfied
        assert report.estimated_delta < delta

    def test_broken_mechanism_fails(self, rng):
        """Grossly undersized noise must be caught empirically."""
        r, eps, delta, n = 500.0, 1.0, 0.01, 4
        sigma = gaussian_sigma_nfold(r, eps, delta, n) / 30.0
        report = empirical_privacy_check(
            r, eps, delta, n, sigma, samples=30_000, rng=rng
        )
        assert not report.satisfied

    def test_empirical_close_to_analytic(self, rng):
        """The sampled hockey-stick should approximate the closed form."""
        r, n = 500.0, 5
        sigma = 1_500.0
        eps = 0.8
        analytic = gaussian_delta(r, sigma / math.sqrt(n), eps)
        report = empirical_privacy_check(
            r, eps, 1e-9, n, sigma, samples=150_000, rng=rng
        )
        assert report.estimated_delta == pytest.approx(analytic, rel=0.15, abs=5e-4)

    def test_rejects_bad_samples(self, rng):
        with pytest.raises(ValueError):
            empirical_privacy_check(500, 1.0, 0.01, 1, 1000.0, samples=0, rng=rng)
