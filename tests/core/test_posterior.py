"""Unit tests for posterior-based output selection (Algorithm 4)."""

import math

import numpy as np
import pytest

from repro.core.posterior import (
    PosteriorSelector,
    UniformSelector,
    posterior_density,
    posterior_weights,
)
from repro.geo.point import Point


class TestPosteriorDensity:
    def test_peak_at_candidate_mean(self):
        cands = [Point(-1, 0), Point(1, 0)]
        at_mean = posterior_density(cands, 1.0, Point(0, 0))
        off_mean = posterior_density(cands, 1.0, Point(1, 1))
        assert at_mean > off_mean

    def test_normalisation_constant(self):
        cands = [Point(0, 0)]
        assert posterior_density(cands, 2.0, Point(0, 0)) == pytest.approx(
            1 / (2 * math.pi * 4.0)
        )

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            posterior_density([Point(0, 0)], 0.0, Point(0, 0))


class TestPosteriorWeights:
    def test_weights_sum_to_one(self):
        cands = [Point(0, 0), Point(5, 0), Point(-3, 4)]
        w = posterior_weights(cands, 2.0)
        assert w.sum() == pytest.approx(1.0)

    def test_candidate_near_mean_gets_higher_weight(self):
        cands = [Point(0.1, 0), Point(10, 0), Point(-10, 0)]
        w = posterior_weights(cands, 1.0)
        assert w[0] > w[1]
        assert w[0] > w[2]

    def test_symmetric_candidates_equal_weight(self):
        cands = [Point(-3, 0), Point(3, 0)]
        w = posterior_weights(cands, 1.0)
        assert w[0] == pytest.approx(w[1])

    def test_numerical_stability_with_distant_candidates(self):
        """Huge distances must not underflow to all-zero weights."""
        cands = [Point(0, 0), Point(1e7, 0)]
        w = posterior_weights(cands, 1.0)
        assert np.isfinite(w).all()
        assert w.sum() == pytest.approx(1.0)

    def test_empty_candidates_raise(self):
        with pytest.raises(ValueError):
            posterior_weights([], 1.0)


class TestPosteriorSelector:
    def test_selection_frequencies_match_weights(self, rng):
        cands = [Point(0, 0), Point(2, 0), Point(-2, 0)]
        selector = PosteriorSelector(1.0, rng=rng)
        expected = selector.probabilities(cands)
        counts = np.zeros(3)
        for _ in range(6000):
            counts[selector.select_index(cands)] += 1
        observed = counts / counts.sum()
        assert np.allclose(observed, expected, atol=0.03)

    def test_select_returns_a_candidate(self, rng):
        cands = [Point(1, 2), Point(3, 4)]
        assert PosteriorSelector(1.0, rng=rng).select(cands) in cands

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            PosteriorSelector(0.0)


class TestUniformSelector:
    def test_uniform_probabilities(self):
        probs = UniformSelector().probabilities([Point(0, 0)] * 4)
        assert np.allclose(probs, 0.25)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            UniformSelector().probabilities([])

    def test_selection_is_roughly_uniform(self, rng):
        cands = [Point(i, 0) for i in range(5)]
        sel = UniformSelector(rng=rng)
        counts = np.zeros(5)
        for _ in range(5000):
            counts[sel.select_index(cands)] += 1
        assert np.allclose(counts / counts.sum(), 0.2, atol=0.03)
