"""Unit tests for the polar inverse-CDF noise samplers (Algorithm 3)."""

import math

import numpy as np
import pytest
from scipy import stats

from repro.core.sampling import (
    planar_laplace_radial_cdf,
    planar_laplace_radial_quantile,
    polar_to_cartesian,
    rayleigh_cdf,
    rayleigh_quantile,
    sample_gaussian_noise,
    sample_planar_laplace_noise,
)


class TestRayleigh:
    def test_cdf_at_zero(self):
        assert rayleigh_cdf(np.array(0.0), 100.0) == pytest.approx(0.0)

    def test_cdf_quantile_roundtrip(self):
        sigma = 123.0
        for p in (0.1, 0.5, 0.95):
            r = rayleigh_quantile(p, sigma)
            assert rayleigh_cdf(np.array(r), sigma) == pytest.approx(p)

    def test_median_formula(self):
        """Rayleigh median = sigma * sqrt(2 ln 2)."""
        assert rayleigh_quantile(0.5, 1.0) == pytest.approx(math.sqrt(2 * math.log(2)))

    def test_quantile_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            rayleigh_quantile(1.0, 1.0)
        with pytest.raises(ValueError):
            rayleigh_quantile(0.5, 0.0)


class TestGaussianSampler:
    def test_shape(self, rng):
        assert sample_gaussian_noise(10.0, 7, rng).shape == (7, 2)

    def test_marginals_are_gaussian(self, rng):
        """Each Cartesian coordinate of the polar sampler must be N(0, sigma^2)."""
        sigma = 50.0
        noise = sample_gaussian_noise(sigma, 40_000, rng)
        for axis in (0, 1):
            _, pvalue = stats.kstest(noise[:, axis] / sigma, "norm")
            assert pvalue > 1e-3

    def test_radius_is_rayleigh(self, rng):
        sigma = 10.0
        noise = sample_gaussian_noise(sigma, 40_000, rng)
        radii = np.hypot(noise[:, 0], noise[:, 1])
        _, pvalue = stats.kstest(radii / sigma, "rayleigh")
        assert pvalue > 1e-3

    def test_isotropy(self, rng):
        noise = sample_gaussian_noise(5.0, 40_000, rng)
        angles = np.arctan2(noise[:, 1], noise[:, 0])
        _, pvalue = stats.kstest((angles + math.pi) / (2 * math.pi), "uniform")
        assert pvalue > 1e-3

    def test_zero_size(self, rng):
        assert sample_gaussian_noise(1.0, 0, rng).shape == (0, 2)

    def test_rejects_bad_sigma(self, rng):
        with pytest.raises(ValueError):
            sample_gaussian_noise(0.0, 10, rng)


class TestPlanarLaplace:
    def test_cdf_quantile_roundtrip(self):
        eps = 0.01
        for p in (0.05, 0.5, 0.95):
            r = planar_laplace_radial_quantile(p, eps)
            assert planar_laplace_radial_cdf(np.array(r), eps) == pytest.approx(p)

    def test_quantile_at_zero(self):
        assert planar_laplace_radial_quantile(0.0, 0.01) == 0.0

    def test_quantile_scales_inversely_with_epsilon(self):
        r1 = planar_laplace_radial_quantile(0.9, 0.01)
        r2 = planar_laplace_radial_quantile(0.9, 0.02)
        assert r1 == pytest.approx(2 * r2)

    def test_sampled_radii_match_cdf(self, rng):
        eps = 0.005
        noise = sample_planar_laplace_noise(eps, 30_000, rng)
        radii = np.hypot(noise[:, 0], noise[:, 1])
        # Empirical CDF at a few radii vs the analytic C_eps.
        for r in (100.0, 300.0, 800.0):
            empirical = (radii <= r).mean()
            analytic = float(planar_laplace_radial_cdf(np.array(r), eps))
            assert empirical == pytest.approx(analytic, abs=0.015)

    def test_mean_radius_is_2_over_eps(self, rng):
        """The planar Laplace radial mean is 2/eps (Gamma(2, 1/eps))."""
        eps = 0.01
        noise = sample_planar_laplace_noise(eps, 30_000, rng)
        radii = np.hypot(noise[:, 0], noise[:, 1])
        assert radii.mean() == pytest.approx(2 / eps, rel=0.03)

    def test_rejects_bad_epsilon(self, rng):
        with pytest.raises(ValueError):
            sample_planar_laplace_noise(0.0, 10, rng)


class TestPolarToCartesian:
    def test_known_angles(self):
        out = polar_to_cartesian(np.array([1.0, 2.0]), np.array([0.0, math.pi / 2]))
        assert out[0] == pytest.approx([1.0, 0.0])
        assert out[1] == pytest.approx([0.0, 2.0], abs=1e-12)
