"""Unit tests for privacy budget parameter objects."""

import math

import pytest

from repro.core.params import GeoIndBudget, OneTimeBudget


class TestOneTimeBudget:
    def test_from_level_matches_paper_convention(self):
        b = OneTimeBudget.from_level(math.log(2), 200.0)
        assert b.epsilon == pytest.approx(math.log(2) / 200.0)

    @pytest.mark.parametrize("eps", [0.0, -1.0, float("inf"), float("nan")])
    def test_rejects_bad_epsilon(self, eps):
        with pytest.raises(ValueError):
            OneTimeBudget(eps)

    def test_from_level_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            OneTimeBudget.from_level(0.0, 200.0)
        with pytest.raises(ValueError):
            OneTimeBudget.from_level(1.0, 0.0)


class TestGeoIndBudget:
    def test_valid_budget(self):
        b = GeoIndBudget(r=500.0, epsilon=1.0, delta=0.01, n=10)
        assert b.n == 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(r=0.0, epsilon=1.0, delta=0.01),
            dict(r=500.0, epsilon=0.0, delta=0.01),
            dict(r=500.0, epsilon=1.0, delta=0.0),
            dict(r=500.0, epsilon=1.0, delta=1.0),
            dict(r=500.0, epsilon=1.0, delta=0.01, n=0),
            dict(r=float("inf"), epsilon=1.0, delta=0.01),
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            GeoIndBudget(**kwargs)

    def test_with_n(self):
        b = GeoIndBudget(500.0, 1.0, 0.01, 10)
        b1 = b.with_n(1)
        assert b1.n == 1
        assert (b1.r, b1.epsilon, b1.delta) == (b.r, b.epsilon, b.delta)

    def test_split_for_composition(self):
        b = GeoIndBudget(500.0, 1.0, 0.01, 10)
        s = b.split_for_composition()
        assert s.n == 1
        assert s.epsilon == pytest.approx(0.1)
        assert s.delta == pytest.approx(0.001)

    def test_budget_is_hashable(self):
        assert len({GeoIndBudget(500, 1, 0.01), GeoIndBudget(500, 1, 0.01)}) == 1
