"""Unit tests for the discretized/truncated planar Laplace mechanism."""

import math

import numpy as np
import pytest

from repro.core.discretization import (
    TruncatedDiscreteLaplaceMechanism,
    discretization_adjusted_epsilon,
    snap_to_grid,
)
from repro.core.mechanism import default_rng
from repro.core.params import OneTimeBudget
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point


class TestSnapToGrid:
    def test_snaps_to_nearest_vertex(self):
        assert snap_to_grid(Point(12.0, 27.0), 10.0) == Point(10.0, 30.0)

    def test_on_grid_is_fixed_point(self):
        assert snap_to_grid(Point(20.0, -30.0), 10.0) == Point(20.0, -30.0)

    def test_bad_step_raises(self):
        with pytest.raises(ValueError):
            snap_to_grid(Point(0, 0), 0.0)


class TestAdjustedEpsilon:
    def test_stronger_than_nominal(self):
        eps = 0.01
        adjusted = discretization_adjusted_epsilon(eps, step=50.0)
        assert 0 < adjusted < eps

    def test_finer_grid_less_adjustment(self):
        eps = 0.01
        coarse = discretization_adjusted_epsilon(eps, 100.0)
        fine = discretization_adjusted_epsilon(eps, 1.0)
        assert fine > coarse
        assert fine == pytest.approx(eps, rel=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            discretization_adjusted_epsilon(0.0, 1.0)
        with pytest.raises(ValueError):
            discretization_adjusted_epsilon(0.01, 0.0)


class TestTruncatedDiscreteMechanism:
    def _mech(self, region=None, step=50.0, seed=0):
        return TruncatedDiscreteLaplaceMechanism(
            OneTimeBudget(0.01), grid_step=step, region=region,
            rng=default_rng(seed),
        )

    def test_outputs_on_grid(self):
        mech = self._mech()
        for _ in range(50):
            out = mech.obfuscate(Point(123.0, 456.0))[0]
            assert out.x % 50.0 == pytest.approx(0.0, abs=1e-9)
            assert out.y % 50.0 == pytest.approx(0.0, abs=1e-9)

    def test_outputs_inside_region(self):
        region = BoundingBox(-500.0, -500.0, 500.0, 500.0)
        mech = self._mech(region=region)
        for _ in range(100):
            out = mech.obfuscate(Point(450.0, 450.0))[0]
            assert region.contains(out)

    def test_batch_matches_constraints(self):
        region = BoundingBox(-1_000.0, -1_000.0, 1_000.0, 1_000.0)
        mech = self._mech(region=region)
        outs = mech.obfuscate_batch(np.zeros((500, 2)))
        assert (np.abs(outs) <= 1_000.0).all()
        assert np.allclose(outs % 50.0, 0.0)

    def test_runs_at_adjusted_epsilon(self):
        mech = self._mech()
        assert mech.adjusted_epsilon < mech.nominal_budget.epsilon

    def test_tail_radius_covers_rounding(self):
        continuous_tail = self._mech(step=1e-6).noise_tail_radius(0.05)
        discrete_tail = self._mech(step=200.0).noise_tail_radius(0.05)
        assert discrete_tail > continuous_tail

    def test_noise_distribution_close_to_continuous(self, rng):
        """Snapping shifts each point < step/sqrt(2); means should agree."""
        mech = self._mech(step=10.0, seed=3)
        outs = mech.obfuscate_batch(np.zeros((4_000, 2)))
        radii = np.hypot(outs[:, 0], outs[:, 1])
        # Mean radius of planar Laplace is 2/eps' (adjusted epsilon).
        assert radii.mean() == pytest.approx(2 / mech.adjusted_epsilon, rel=0.05)

    def test_bad_step_raises(self):
        with pytest.raises(ValueError):
            TruncatedDiscreteLaplaceMechanism(OneTimeBudget(0.01), grid_step=0.0)

    def test_single_output_mechanism(self):
        assert self._mech().n_outputs == 1
