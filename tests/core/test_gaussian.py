"""Unit tests for the 1-fold and n-fold Gaussian mechanisms."""

import math

import numpy as np
import pytest

from repro.core.calibration import gaussian_sigma_nfold, gaussian_sigma_single
from repro.core.gaussian import GaussianMechanism, NFoldGaussianMechanism
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget
from repro.geo.point import Point


class TestGaussianMechanism:
    def test_sigma_matches_lemma1(self):
        b = GeoIndBudget(500, 1.0, 0.01, 1)
        m = GaussianMechanism(b)
        assert m.sigma == pytest.approx(gaussian_sigma_single(500, 1.0, 0.01))

    def test_single_output(self):
        m = GaussianMechanism(GeoIndBudget(500, 1.0, 0.01, 1), rng=default_rng(0))
        outputs = m.obfuscate(Point(10.0, 20.0))
        assert len(outputs) == 1
        assert m.n_outputs == 1

    def test_rejects_multi_output_budget(self):
        with pytest.raises(ValueError):
            GaussianMechanism(GeoIndBudget(500, 1.0, 0.01, 5))

    def test_obfuscate_one(self):
        m = GaussianMechanism(GeoIndBudget(500, 1.0, 0.01, 1), rng=default_rng(0))
        out = m.obfuscate_one(Point(0, 0))
        assert isinstance(out, Point)

    def test_noise_centered_on_input(self, rng):
        m = GaussianMechanism(GeoIndBudget(500, 1.0, 0.01, 1), rng=rng)
        center = Point(1000.0, -500.0)
        outs = np.array([tuple(m.obfuscate(center)[0]) for _ in range(4000)])
        assert outs[:, 0].mean() == pytest.approx(1000.0, abs=m.sigma * 4 / 63)
        assert outs[:, 1].mean() == pytest.approx(-500.0, abs=m.sigma * 4 / 63)

    def test_tail_radius_is_rayleigh_quantile(self):
        m = GaussianMechanism(GeoIndBudget(500, 1.0, 0.01, 1))
        r = m.noise_tail_radius(0.05)
        assert r == pytest.approx(m.sigma * math.sqrt(2 * math.log(1 / 0.05)))

    def test_tail_radius_rejects_bad_alpha(self):
        m = GaussianMechanism(GeoIndBudget(500, 1.0, 0.01, 1))
        with pytest.raises(ValueError):
            m.noise_tail_radius(0.0)


class TestNFoldGaussianMechanism:
    def test_sigma_matches_theorem2(self, paper_budget):
        m = NFoldGaussianMechanism(paper_budget)
        assert m.sigma == pytest.approx(gaussian_sigma_nfold(500, 1.0, 0.01, 10))

    def test_output_count(self, paper_budget):
        m = NFoldGaussianMechanism(paper_budget, rng=default_rng(1))
        assert len(m.obfuscate(Point(0, 0))) == 10

    def test_outputs_are_distinct(self, paper_budget):
        m = NFoldGaussianMechanism(paper_budget, rng=default_rng(1))
        outs = m.obfuscate(Point(0, 0))
        assert len({(o.x, o.y) for o in outs}) == 10

    def test_obfuscate_one_rejected_for_multi_output(self, paper_budget):
        m = NFoldGaussianMechanism(paper_budget)
        with pytest.raises(ValueError):
            m.obfuscate_one(Point(0, 0))

    def test_posterior_sigma(self, paper_budget):
        m = NFoldGaussianMechanism(paper_budget)
        assert m.posterior_sigma == pytest.approx(m.sigma / math.sqrt(10))

    def test_mean_tail_tighter_than_single_tail(self, paper_budget):
        m = NFoldGaussianMechanism(paper_budget)
        assert m.mean_tail_radius(0.05) < m.noise_tail_radius(0.05)

    def test_sample_mean_concentrates_as_sufficient_statistic(self, rng):
        """The candidate mean must be N(p, sigma^2/n) — Theorem 2's core."""
        budget = GeoIndBudget(500, 1.0, 0.01, 10)
        m = NFoldGaussianMechanism(budget, rng=rng)
        trials = 2000
        means = np.empty((trials, 2))
        for t in range(trials):
            outs = m.obfuscate(Point(0, 0))
            arr = np.array([tuple(o) for o in outs])
            means[t] = arr.mean(axis=0)
        expected_std = m.sigma / math.sqrt(10)
        assert means[:, 0].std() == pytest.approx(expected_std, rel=0.08)
        assert means[:, 1].std() == pytest.approx(expected_std, rel=0.08)

    def test_obfuscate_stream(self, paper_budget):
        m = NFoldGaussianMechanism(paper_budget, rng=default_rng(2))
        stream = m.obfuscate_stream([Point(0, 0), Point(1, 1)])
        assert len(stream) == 2
        assert all(len(s) == 10 for s in stream)

    def test_reseed_reproduces(self, paper_budget):
        m = NFoldGaussianMechanism(paper_budget)
        m.reseed(7)
        first = m.obfuscate(Point(0, 0))
        m.reseed(7)
        second = m.obfuscate(Point(0, 0))
        assert first == second
