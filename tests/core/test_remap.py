"""Unit tests for Bayesian posterior remapping."""

import numpy as np
import pytest

from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.mechanism import default_rng
from repro.core.params import OneTimeBudget
from repro.core.remap import (
    BayesianRemap,
    LocationPrior,
    gaussian_noise_loglik,
    geometric_median,
    planar_laplace_noise_loglik,
)
from repro.geo.point import Point


class TestLocationPrior:
    def test_weights_normalised(self):
        prior = LocationPrior(np.zeros((3, 2)), np.array([1.0, 1.0, 2.0]))
        assert prior.weights.sum() == pytest.approx(1.0)
        assert prior.weights[2] == pytest.approx(0.5)

    def test_uniform_grid_shape(self):
        prior = LocationPrior.uniform_grid(Point(0, 0), half_extent=100.0, step=50.0)
        assert len(prior.support) == 25  # 5x5
        assert np.allclose(prior.weights, 1 / 25)

    def test_from_profile(self):
        prior = LocationPrior.from_profile(
            [Point(0, 0), Point(10, 0)], [3.0, 1.0]
        )
        assert prior.weights[0] == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            LocationPrior(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError):
            LocationPrior(np.zeros((2, 2)), np.array([1.0]))
        with pytest.raises(ValueError):
            LocationPrior(np.zeros((2, 2)), np.array([-1.0, 2.0]))
        with pytest.raises(ValueError):
            LocationPrior.uniform_grid(Point(0, 0), 0.0, 1.0)


class TestGeometricMedian:
    def test_single_point(self):
        m = geometric_median(np.array([[3.0, 4.0]]), np.array([1.0]))
        assert m == pytest.approx([3.0, 4.0])

    def test_symmetric_square(self):
        pts = np.array([[0, 0], [2, 0], [2, 2], [0, 2]], dtype=float)
        m = geometric_median(pts, np.ones(4))
        assert m == pytest.approx([1.0, 1.0], abs=1e-4)

    def test_dominant_weight_pulls_median(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0]])
        m = geometric_median(pts, np.array([10.0, 1.0]))
        # With majority weight on one point the median IS that point.
        assert m == pytest.approx([0.0, 0.0], abs=1e-6)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_median(np.zeros((0, 2)), np.zeros(0))


class TestBayesianRemap:
    def _concentrated_prior(self):
        # Strong prior on (0, 0), weak elsewhere.
        support = np.array([[0.0, 0.0], [3_000.0, 0.0], [-3_000.0, 0.0]])
        return LocationPrior(support, np.array([0.9, 0.05, 0.05]))

    def test_posterior_sums_to_one(self):
        remap = BayesianRemap(self._concentrated_prior(), gaussian_noise_loglik(500.0))
        post = remap.posterior(Point(100.0, 0.0))
        assert post.sum() == pytest.approx(1.0)

    def test_remap_pulls_toward_prior_mode(self):
        remap = BayesianRemap(self._concentrated_prior(), gaussian_noise_loglik(1_000.0))
        reported = Point(900.0, 0.0)
        out = remap.remap(reported)
        assert abs(out.x) < reported.x  # pulled toward the (0,0) mode

    def test_squared_loss_is_posterior_mean(self):
        prior = LocationPrior(
            np.array([[0.0, 0.0], [100.0, 0.0]]), np.array([0.5, 0.5])
        )
        remap = BayesianRemap(prior, gaussian_noise_loglik(1e9))  # flat likelihood
        out = remap.remap(Point(50.0, 0.0))
        assert out.x == pytest.approx(50.0, abs=1.0)

    def test_euclidean_loss_is_median(self):
        prior = LocationPrior(
            np.array([[0.0, 0.0], [100.0, 0.0], [110.0, 0.0]]),
            np.array([1.0, 1.0, 1.0]),
        )
        remap = BayesianRemap(prior, gaussian_noise_loglik(1e9), loss="euclidean")
        out = remap.remap(Point(50.0, 0.0))
        # Geometric median of three near-collinear equal weights: middle point.
        assert out.x == pytest.approx(100.0, abs=1.0)

    def test_unknown_loss_raises(self):
        with pytest.raises(ValueError):
            BayesianRemap(self._concentrated_prior(), gaussian_noise_loglik(1.0), loss="huber")

    def test_remap_improves_expected_error_under_good_prior(self, rng):
        """The related-work claim: remapping reduces expected distance loss."""
        eps = 1 / 300.0
        mech = PlanarLaplaceMechanism(OneTimeBudget(eps), rng=default_rng(5))
        truth = Point(0.0, 0.0)
        prior = LocationPrior.uniform_grid(truth, half_extent=400.0, step=100.0)
        remap = BayesianRemap(prior, planar_laplace_noise_loglik(eps))
        raw_err, remapped_err = [], []
        for _ in range(300):
            z = mech.obfuscate(truth)[0]
            raw_err.append(truth.distance_to(z))
            remapped_err.append(truth.distance_to(remap.remap(z)))
        assert np.mean(remapped_err) < np.mean(raw_err)

    def test_remap_batch(self):
        remap = BayesianRemap(self._concentrated_prior(), gaussian_noise_loglik(500.0))
        outs = remap.remap_batch([Point(0, 0), Point(10, 10)])
        assert len(outs) == 2
