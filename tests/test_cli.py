"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestExperimentsCommand:
    def test_runs_table1(self, capsys):
        assert main(["experiments", "table1"]) == 0
        out = capsys.readouterr().out
        assert "google" in out


class TestSimulateCommand:
    def test_small_simulation(self, capsys):
        assert main(["simulate", "--users", "3", "--campaigns", "30"]) == 0
        out = capsys.readouterr().out
        assert "requests served" in out
        assert "relevance ratio" in out

    def test_simulation_with_attack(self, capsys):
        assert main(
            ["simulate", "--users", "3", "--campaigns", "20", "--attack"]
        ) == 0
        out = capsys.readouterr().out
        assert "attack success" in out


class TestAttackCommand:
    def test_case_study_attack(self, capsys):
        assert main(["attack", "--level", "ln4"]) == 0
        out = capsys.readouterr().out
        assert "full year" in out
        assert "home recovered" in out


class TestServeCommand:
    def test_replay_run_reports_and_writes_artifacts(self, capsys, tmp_path):
        import json

        prom = tmp_path / "serve.prom"
        bench = tmp_path / "BENCH_serve.json"
        code = main(
            ["serve", "--replay", "--shards", "2", "--duration-events", "120",
             "--users", "5", "--campaigns", "30", "--inline",
             "--prom-file", str(prom), "--bench-json", str(bench)]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["processed"] == 120
        assert report["dropped"] == 0
        # The exactness contract surfaces in the report itself.
        assert report["epsilon_spent"] == report["audit_epsilon"]
        assert len(report["response_digest"]) == 64
        prom_text = prom.read_text()
        assert "serve_events_total" in prom_text
        assert "privacy_epsilon_spent" in prom_text
        payload = json.loads(bench.read_text())
        assert payload["experiment_id"] == "serve"
        assert payload["wall_seconds"] > 0

    def test_duration_sizes_workload_from_qps(self, capsys):
        code = main(
            ["serve", "--replay", "--shards", "1", "--inline", "--users", "4",
             "--campaigns", "20", "--qps", "50", "--duration", "2"]
        )
        assert code == 0
        import json

        report = json.loads(capsys.readouterr().out)
        assert report["processed"] == 100


class TestVerifyCommand:
    def test_valid_budget_passes(self, capsys):
        code = main(
            ["verify", "--r", "500", "--epsilon", "1.0", "--delta", "0.01",
             "--n", "10", "--samples", "20000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "analytic check:  OK" in out
