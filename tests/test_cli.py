"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestExperimentsCommand:
    def test_runs_table1(self, capsys):
        assert main(["experiments", "table1"]) == 0
        out = capsys.readouterr().out
        assert "google" in out


class TestSimulateCommand:
    def test_small_simulation(self, capsys):
        assert main(["simulate", "--users", "3", "--campaigns", "30"]) == 0
        out = capsys.readouterr().out
        assert "requests served" in out
        assert "relevance ratio" in out

    def test_simulation_with_attack(self, capsys):
        assert main(
            ["simulate", "--users", "3", "--campaigns", "20", "--attack"]
        ) == 0
        out = capsys.readouterr().out
        assert "attack success" in out


class TestAttackCommand:
    def test_case_study_attack(self, capsys):
        assert main(["attack", "--level", "ln4"]) == 0
        out = capsys.readouterr().out
        assert "full year" in out
        assert "home recovered" in out


class TestVerifyCommand:
    def test_valid_budget_passes(self, capsys):
        code = main(
            ["verify", "--r", "500", "--epsilon", "1.0", "--delta", "0.01",
             "--n", "10", "--samples", "20000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "analytic check:  OK" in out
