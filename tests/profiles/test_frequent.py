"""Unit tests for the eta-frequent location set (Definition 6 / Algorithm 2)."""

import pytest

from repro.geo.point import Point
from repro.profiles.frequent import (
    coverage_of_top,
    eta_frequent_entries,
    eta_frequent_set,
)
from repro.profiles.profile import LocationProfile, ProfileEntry


def make_profile(freqs):
    return LocationProfile(
        [ProfileEntry(Point(float(i), 0.0), f) for i, f in enumerate(freqs)]
    )


class TestEtaFrequentSet:
    def test_fractional_eta_takes_minimal_prefix(self):
        profile = make_profile([60, 25, 10, 5])
        # 0.8 * 100 = 80 -> need 60 + 25 = 85 >= 80: two locations.
        assert len(eta_frequent_set(profile, 0.8)) == 2

    def test_absolute_eta(self):
        profile = make_profile([60, 25, 10, 5])
        assert len(eta_frequent_set(profile, 70.0)) == 2
        assert len(eta_frequent_set(profile, 60.0)) == 1

    def test_eta_one_single_dominant(self):
        profile = make_profile([100])
        assert len(eta_frequent_set(profile, 1.0)) == 1

    def test_minimality(self):
        """Dropping the last member must fall below the threshold."""
        profile = make_profile([40, 30, 20, 10])
        entries = eta_frequent_entries(profile, 0.75)
        total = profile.total_checkins
        included = sum(e.frequency for e in entries)
        assert included >= 0.75 * total
        assert included - entries[-1].frequency < 0.75 * total

    def test_threshold_above_total_returns_all(self):
        profile = make_profile([10, 5])
        assert len(eta_frequent_set(profile, 1_000.0)) == 2

    def test_empty_profile(self):
        assert eta_frequent_set(LocationProfile(), 0.8) == []

    def test_rejects_nonpositive_eta(self):
        with pytest.raises(ValueError):
            eta_frequent_set(make_profile([10]), 0.0)

    def test_returns_locations_most_frequent_first(self):
        profile = make_profile([10, 50, 30])
        locs = eta_frequent_set(profile, 0.99)
        freqs = {e.location: e.frequency for e in profile}
        assert [freqs[l] for l in locs] == sorted(
            [freqs[l] for l in locs], reverse=True
        )


class TestCoverage:
    def test_coverage_of_top(self):
        profile = make_profile([60, 25, 10, 5])
        assert coverage_of_top(profile, 1) == pytest.approx(0.6)
        assert coverage_of_top(profile, 2) == pytest.approx(0.85)
        assert coverage_of_top(profile, 10) == pytest.approx(1.0)

    def test_coverage_empty_profile(self):
        assert coverage_of_top(LocationProfile(), 1) == 0.0
