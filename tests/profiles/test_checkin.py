"""Unit tests for check-in records and window filtering."""

import numpy as np
import pytest

from repro.geo.point import Point
from repro.profiles.checkin import (
    SECONDS_PER_DAY,
    CheckIn,
    checkins_to_array,
    filter_window,
)


class TestCheckIn:
    def test_ordering_is_chronological(self):
        a = CheckIn(100.0, Point(5, 5))
        b = CheckIn(50.0, Point(0, 0))
        assert sorted([a, b])[0] is b

    def test_coordinate_accessors(self):
        c = CheckIn(0.0, Point(3.0, 4.0))
        assert (c.x, c.y) == (3.0, 4.0)

    def test_displaced(self):
        c = CheckIn(10.0, Point(1.0, 1.0))
        d = c.displaced(2.0, -1.0)
        assert d.point == Point(3.0, 0.0)
        assert d.timestamp == 10.0
        assert c.point == Point(1.0, 1.0)

    def test_frozen(self):
        c = CheckIn(0.0, Point(0, 0))
        with pytest.raises(AttributeError):
            c.timestamp = 5.0


class TestCheckinsToArray:
    def test_packs_coordinates(self):
        cs = [CheckIn(0.0, Point(1, 2)), CheckIn(1.0, Point(3, 4))]
        arr = checkins_to_array(cs)
        assert arr.tolist() == [[1, 2], [3, 4]]

    def test_empty(self):
        assert checkins_to_array([]).shape == (0, 2)


class TestFilterWindow:
    def _trace(self):
        return [CheckIn(float(t), Point(0, 0)) for t in range(10)]

    def test_half_open_interval(self):
        out = filter_window(self._trace(), 2.0, 5.0)
        assert [c.timestamp for c in out] == [2.0, 3.0, 4.0]

    def test_empty_window(self):
        assert filter_window(self._trace(), 100.0, 200.0) == []

    def test_inverted_window_raises(self):
        with pytest.raises(ValueError):
            filter_window(self._trace(), 5.0, 2.0)

    def test_full_window(self):
        assert len(filter_window(self._trace(), 0.0, 100.0)) == 10
