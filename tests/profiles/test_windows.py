"""Unit tests for time-windowed profile building."""

import pytest

from repro.geo.point import Point
from repro.profiles.checkin import SECONDS_PER_DAY, CheckIn
from repro.profiles.windows import WindowedProfileBuilder


DAY = SECONDS_PER_DAY


def ci(t, x=0.0, y=0.0):
    return CheckIn(t, Point(x, y))


class TestWindowedProfileBuilder:
    def test_no_emission_within_window(self):
        b = WindowedProfileBuilder(window_seconds=10 * DAY)
        assert b.add(ci(0.0)) is None
        assert b.add(ci(5 * DAY)) is None
        assert b.pending == 2

    def test_emission_on_rollover(self):
        b = WindowedProfileBuilder(window_seconds=10 * DAY)
        b.add(ci(0.0))
        b.add(ci(1 * DAY))
        result = b.add(ci(11 * DAY))
        assert result is not None
        assert result.profile.total_checkins == 2
        assert result.window_start == 0.0
        assert result.window_end == 10 * DAY
        # The triggering check-in belongs to the new window.
        assert b.pending == 1

    def test_gap_skips_empty_windows(self):
        b = WindowedProfileBuilder(window_seconds=10 * DAY)
        b.add(ci(0.0))
        result = b.add(ci(35 * DAY))
        assert result is not None
        # The next rollover should happen at the window containing 35d.
        assert b.add(ci(39 * DAY)) is None
        assert b.add(ci(41 * DAY)) is not None

    def test_flush_emits_partial_window(self):
        b = WindowedProfileBuilder(window_seconds=10 * DAY)
        b.add(ci(0.0))
        b.add(ci(3 * DAY))
        result = b.flush()
        assert result is not None
        assert result.profile.total_checkins == 2

    def test_flush_empty_returns_none(self):
        b = WindowedProfileBuilder(window_seconds=10 * DAY)
        assert b.flush() is None

    def test_out_of_order_checkins_raise(self):
        b = WindowedProfileBuilder(window_seconds=10 * DAY)
        b.add(ci(5 * DAY))
        with pytest.raises(ValueError):
            b.add(ci(1 * DAY))

    def test_profile_clusters_by_location(self, rng):
        b = WindowedProfileBuilder(window_seconds=10 * DAY, connect_radius=50.0)
        for i in range(20):
            b.add(ci(float(i), 0.0, 0.0))
        for i in range(10):
            b.add(ci(20.0 + i, 5_000.0, 0.0))
        result = b.flush()
        assert len(result.profile) == 2
        assert result.profile[0].frequency == 20

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            WindowedProfileBuilder(window_seconds=0.0)
        with pytest.raises(ValueError):
            WindowedProfileBuilder(connect_radius=0.0)
