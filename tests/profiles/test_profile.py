"""Unit tests for location profiles and entropy (Eq. 2 / Eq. 3)."""

import math

import numpy as np
import pytest

from repro.geo.point import Point
from repro.profiles.checkin import CheckIn
from repro.profiles.profile import LocationProfile, ProfileEntry


def trace_at(point, count, jitter=0.0, t0=0.0, rng=None):
    """Helper: `count` check-ins around a point with optional jitter."""
    out = []
    for i in range(count):
        dx = dy = 0.0
        if jitter and rng is not None:
            dx, dy = rng.normal(0, jitter, 2)
        out.append(CheckIn(t0 + i, Point(point.x + dx, point.y + dy)))
    return out


class TestProfileEntry:
    def test_rejects_zero_frequency(self):
        with pytest.raises(ValueError):
            ProfileEntry(Point(0, 0), 0)


class TestFromCheckins:
    def test_empty_trace_gives_empty_profile(self):
        profile = LocationProfile.from_checkins([])
        assert len(profile) == 0
        assert not profile

    def test_single_location(self, rng):
        trace = trace_at(Point(0, 0), 50, jitter=5.0, rng=rng)
        profile = LocationProfile.from_checkins(trace)
        assert len(profile) == 1
        assert profile[0].frequency == 50
        assert profile[0].location.distance_to(Point(0, 0)) < 5.0

    def test_two_locations_separated(self, rng):
        trace = trace_at(Point(0, 0), 30, jitter=5.0, rng=rng) + trace_at(
            Point(1000, 0), 10, jitter=5.0, rng=rng
        )
        profile = LocationProfile.from_checkins(trace)
        assert len(profile) == 2
        assert profile[0].frequency == 30  # ordered by frequency
        assert profile[1].frequency == 10

    def test_connect_radius_controls_merging(self):
        trace = [CheckIn(0, Point(0, 0)), CheckIn(1, Point(60, 0))]
        assert len(LocationProfile.from_checkins(trace, connect_radius=50.0)) == 2
        assert len(LocationProfile.from_checkins(trace, connect_radius=70.0)) == 1

    def test_total_checkins_preserved(self, rng):
        trace = trace_at(Point(0, 0), 25, jitter=3.0, rng=rng) + trace_at(
            Point(500, 500), 15, jitter=3.0, rng=rng
        )
        profile = LocationProfile.from_checkins(trace)
        assert profile.total_checkins == 40


class TestEntropy:
    def test_empty_profile(self):
        assert LocationProfile().entropy() == 0.0

    def test_single_location_zero_entropy(self):
        profile = LocationProfile([ProfileEntry(Point(0, 0), 100)])
        assert profile.entropy() == 0.0

    def test_uniform_two_locations(self):
        profile = LocationProfile(
            [ProfileEntry(Point(0, 0), 50), ProfileEntry(Point(1, 1), 50)]
        )
        assert profile.entropy() == pytest.approx(math.log(2))

    def test_uniform_k_locations(self):
        k = 8
        profile = LocationProfile(
            [ProfileEntry(Point(i, 0), 10) for i in range(k)]
        )
        assert profile.entropy() == pytest.approx(math.log(k))

    def test_skew_lowers_entropy(self):
        skewed = LocationProfile(
            [ProfileEntry(Point(0, 0), 90), ProfileEntry(Point(1, 1), 10)]
        )
        uniform = LocationProfile(
            [ProfileEntry(Point(0, 0), 50), ProfileEntry(Point(1, 1), 50)]
        )
        assert skewed.entropy() < uniform.entropy()


class TestTopAndOrdering:
    def test_top_k(self):
        profile = LocationProfile(
            [
                ProfileEntry(Point(0, 0), 5),
                ProfileEntry(Point(1, 0), 50),
                ProfileEntry(Point(2, 0), 20),
            ]
        )
        top2 = profile.top(2)
        assert [e.frequency for e in top2] == [50, 20]

    def test_top_more_than_available(self):
        profile = LocationProfile([ProfileEntry(Point(0, 0), 5)])
        assert len(profile.top(10)) == 1

    def test_top_negative_raises(self):
        with pytest.raises(ValueError):
            LocationProfile().top(-1)

    def test_iteration_order_deterministic(self):
        entries = [
            ProfileEntry(Point(1, 0), 10),
            ProfileEntry(Point(0, 0), 10),
        ]
        profile = LocationProfile(entries)
        assert [e.location.x for e in profile] == [0, 1]


class TestMerging:
    def test_merge_distinct_profiles(self):
        a = LocationProfile([ProfileEntry(Point(0, 0), 10)])
        b = LocationProfile([ProfileEntry(Point(1000, 0), 5)])
        merged = a.merged_with(b, merge_radius=100.0)
        assert len(merged) == 2
        assert merged.total_checkins == 15

    def test_merge_coalesces_nearby_locations(self):
        a = LocationProfile([ProfileEntry(Point(0, 0), 10)])
        b = LocationProfile([ProfileEntry(Point(30, 0), 30)])
        merged = a.merged_with(b, merge_radius=50.0)
        assert len(merged) == 1
        entry = merged[0]
        assert entry.frequency == 40
        # Frequency-weighted centroid: (0*10 + 30*30)/40 = 22.5.
        assert entry.location.x == pytest.approx(22.5)

    def test_merge_with_empty(self):
        a = LocationProfile([ProfileEntry(Point(0, 0), 10)])
        merged = a.merged_with(LocationProfile(), merge_radius=50.0)
        assert len(merged) == 1
