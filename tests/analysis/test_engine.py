"""Engine-level tests: contexts, suppressions, baselines, error paths."""

from pathlib import Path

import pytest

from repro.analysis import (
    FileContext,
    Finding,
    ImportMap,
    analyze_source,
    filter_baselined,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import PARSE_ERROR_RULE, detect_role, module_name_of
from repro.analysis.rules import all_rules, rules_by_id

FIXTURES = Path(__file__).parent / "fixtures"


def _analyze(name, rules, role="src"):
    path = FIXTURES / name
    return analyze_source(path.read_text(), path, rules, role=role)


class TestImportMap:
    def test_plain_and_aliased_imports(self):
        import ast

        tree = ast.parse(
            "import numpy as np\n"
            "import os.path\n"
            "from numpy.random import default_rng as drg\n"
        )
        m = ImportMap.from_tree(tree)
        assert m.resolve(["np", "random", "normal"]) == "numpy.random.normal"
        assert m.resolve(["os", "path", "join"]) == "os.path.join"
        assert m.resolve(["drg"]) == "numpy.random.default_rng"

    def test_unknown_root_resolves_to_none(self):
        import ast

        m = ImportMap.from_tree(ast.parse("import numpy as np\n"))
        assert m.resolve(["rng", "uniform"]) is None
        assert m.resolve([]) is None

    def test_relative_imports_are_ignored(self):
        import ast

        m = ImportMap.from_tree(ast.parse("from . import sampling\n"))
        assert m.resolve(["sampling"]) is None


class TestRoleDetection:
    @pytest.mark.parametrize(
        ("path", "role"),
        [
            ("src/repro/core/sampling.py", "src"),
            ("tests/core/test_sampling.py", "test"),
            ("benchmarks/bench_obfuscate.py", "test"),
            ("examples/quickstart.py", "test"),
            ("src/repro/conftest.py", "test"),
            ("src/repro/test_helpers.py", "test"),
        ],
    )
    def test_detect_role(self, path, role):
        assert detect_role(Path(path)) == role

    def test_module_name_src_layout(self):
        assert module_name_of(Path("src/repro/core/sampling.py")) == "repro.core.sampling"
        assert module_name_of(Path("src/repro/core/__init__.py")) == "repro.core"

    def test_module_name_unknown_layout(self):
        assert module_name_of(FIXTURES / "clean.py") is None


class TestSuppressions:
    def test_suppressed_fixture_is_clean_but_counted(self):
        findings, n_suppressed = _analyze("suppressed.py", all_rules())
        assert findings == []
        assert n_suppressed == 3

    def test_inline_suppression_only_matches_its_rule(self):
        src = "def f(x: float) -> bool:\n" "    return x == 0.0  # reprolint: disable=DET001\n"
        rule = rules_by_id()["FLT001"]
        findings, n_suppressed = analyze_source(src, Path("x.py"), [rule], role="src")
        assert [f.rule for f in findings] == ["FLT001"]
        assert n_suppressed == 0

    def test_disable_all_keyword(self):
        src = "def f(x: float) -> bool:\n" "    return x == 0.0  # reprolint: disable=all\n"
        rule = rules_by_id()["FLT001"]
        findings, n_suppressed = analyze_source(src, Path("x.py"), [rule], role="src")
        assert findings == []
        assert n_suppressed == 1

    def test_standalone_comment_covers_next_line_only(self):
        src = (
            "def f(x: float, y: float) -> bool:\n"
            "    # reprolint: disable=FLT001\n"
            "    a = x == 0.0\n"
            "    b = y == 0.0\n"
            "    return a or b\n"
        )
        rule = rules_by_id()["FLT001"]
        findings, n_suppressed = analyze_source(src, Path("x.py"), [rule], role="src")
        assert len(findings) == 1 and findings[0].line == 4
        assert n_suppressed == 1

    def test_inline_directive_covers_whole_multiline_statement(self):
        """Regression: a directive on a multi-line statement's first
        physical line must cover findings reported on its later lines."""
        src = (
            "def f(x: float) -> bool:\n"
            "    return (  # reprolint: disable=FLT001\n"
            "        x\n"
            "        == 0.0\n"
            "    )\n"
        )
        rule = rules_by_id()["FLT001"]
        findings, n_suppressed = analyze_source(src, Path("x.py"), [rule], role="src")
        assert findings == []
        assert n_suppressed == 1

    def test_standalone_comment_covers_whole_multiline_statement(self):
        src = (
            "def f(x: float) -> bool:\n"
            "    # reprolint: disable=FLT001\n"
            "    return (\n"
            "        x\n"
            "        == 0.0\n"
            "    )\n"
        )
        rule = rules_by_id()["FLT001"]
        findings, n_suppressed = analyze_source(src, Path("x.py"), [rule], role="src")
        assert findings == []
        assert n_suppressed == 1

    def test_directive_on_decorator_line_covers_the_def_header(self):
        """Regression: MUT001 reports on the ``def`` line, below the
        decorator the directive is attached to."""
        src = (
            "import functools\n"
            "\n"
            "@functools.lru_cache()  # reprolint: disable=MUT001\n"
            "def f(xs=[]):\n"
            "    return xs\n"
        )
        rule = rules_by_id()["MUT001"]
        findings, n_suppressed = analyze_source(src, Path("x.py"), [rule], role="src")
        assert findings == []
        assert n_suppressed == 1

    def test_standalone_comment_above_decorator_covers_the_def_header(self):
        src = (
            "import functools\n"
            "\n"
            "# reprolint: disable=MUT001\n"
            "@functools.lru_cache()\n"
            "def f(xs=[]):\n"
            "    return xs\n"
        )
        rule = rules_by_id()["MUT001"]
        findings, n_suppressed = analyze_source(src, Path("x.py"), [rule], role="src")
        assert findings == []
        assert n_suppressed == 1

    def test_compound_header_directive_does_not_swallow_the_body(self):
        """A directive on a ``def`` line must not silence body findings."""
        src = (
            "def f(x: float) -> bool:  # reprolint: disable=FLT001\n"
            "    return x == 0.0\n"
        )
        rule = rules_by_id()["FLT001"]
        findings, n_suppressed = analyze_source(src, Path("x.py"), [rule], role="src")
        assert len(findings) == 1 and findings[0].line == 2
        assert n_suppressed == 0

    def test_comma_separated_rules_in_one_directive(self):
        src = (
            "def f(x: float) -> bool:\n"
            "    # reprolint: disable=FLT001,DET001\n"
            "    return x == 0.0\n"
        )
        rule = rules_by_id()["FLT001"]
        findings, n_suppressed = analyze_source(src, Path("x.py"), [rule], role="src")
        assert findings == []
        assert n_suppressed == 1


class TestErrorPaths:
    def test_syntax_error_becomes_e999_finding(self):
        findings, n_suppressed = analyze_source(
            "def broken(:\n", Path("broken.py"), all_rules(), role="src"
        )
        assert len(findings) == 1
        assert findings[0].rule == PARSE_ERROR_RULE
        assert "syntax error" in findings[0].message
        assert n_suppressed == 0

    def test_finding_format_is_conventional(self):
        f = Finding(path="a/b.py", line=3, col=7, rule="FLT001", message="boom")
        assert f.format() == "a/b.py:3:7: FLT001 boom"
        assert f.to_dict()["line"] == 3


class TestBaseline:
    def test_fingerprint_ignores_line_numbers(self):
        a = Finding(path="m.py", line=3, col=1, rule="FLT001", message="x")
        b = Finding(path="m.py", line=99, col=5, rule="FLT001", message="y")
        assert fingerprint(a) == fingerprint(b)

    def test_roundtrip_filters_known_findings(self, tmp_path):
        findings = [
            Finding(path="m.py", line=3, col=1, rule="FLT001", message="x"),
            Finding(path="m.py", line=8, col=1, rule="FLT001", message="y"),
            Finding(path="n.py", line=1, col=1, rule="MUT001", message="z"),
        ]
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, findings)
        baseline = load_baseline(baseline_path)
        new, n_baselined = filter_baselined(findings, baseline)
        assert new == [] and n_baselined == 3

    def test_growth_beyond_budget_resurfaces(self, tmp_path):
        old = [Finding(path="m.py", line=3, col=1, rule="FLT001", message="x")]
        grown = old + [Finding(path="m.py", line=9, col=1, rule="FLT001", message="y")]
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, old)
        new, n_baselined = filter_baselined(grown, load_baseline(baseline_path))
        assert n_baselined == 1
        assert len(new) == 1 and new[0].rule == "FLT001"

    def test_empty_baseline_passes_everything_through(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, [])
        findings = [Finding(path="m.py", line=1, col=1, rule="FLT001", message="x")]
        new, n_baselined = filter_baselined(findings, load_baseline(baseline_path))
        assert new == findings and n_baselined == 0

    def test_load_rejects_wrong_shape(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 1, "counts": []}')
        with pytest.raises(ValueError):
            load_baseline(bad)


class TestFileContext:
    def test_parents_and_ancestors(self):
        import ast

        ctx = FileContext.build("def f():\n    return 1\n", Path("x.py"))
        ret = next(n for n in ast.walk(ctx.tree) if isinstance(n, ast.Return))
        kinds = [type(a).__name__ for a in ctx.ancestors(ret)]
        assert kinds == ["FunctionDef", "Module"]
