"""Self-check: the shipped tree must be clean against the committed baseline.

This is the same invocation CI runs; if it fails, either fix the new
finding, suppress it with a justification comment, or (for accepted
debt) regenerate the baseline with ``--write-baseline``.
"""

import json
from pathlib import Path

from repro.analysis import analyze_paths, filter_baselined, load_baseline
from repro.analysis.rules import all_rules

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "reprolint-baseline.json"
SRC = REPO_ROOT / "src" / "repro"


def test_committed_baseline_exists_and_is_valid():
    doc = json.loads(BASELINE.read_text())
    assert doc["version"] == 1
    assert isinstance(doc["counts"], dict)


def test_src_tree_is_clean_against_committed_baseline():
    findings, files_scanned, _ = analyze_paths(
        [SRC], all_rules(), root=REPO_ROOT
    )
    new, _ = filter_baselined(findings, load_baseline(BASELINE))
    assert files_scanned > 50, "expected to scan the whole src/repro tree"
    details = "\n".join(f.format() for f in new)
    assert new == [], f"new reprolint findings (fix, suppress, or baseline):\n{details}"


def test_analysis_package_lints_itself():
    findings, files_scanned, _ = analyze_paths(
        [REPO_ROOT / "src" / "repro" / "analysis"], all_rules(), root=REPO_ROOT
    )
    assert files_scanned >= 10
    assert findings == [], "\n".join(f.format() for f in findings)


def test_bad_fixture_would_fail_the_gate():
    """End-to-end: introducing a violation makes the same gate non-zero."""
    bad = Path(__file__).parent / "fixtures" / "bad_budget_redraw.py"
    findings, _, _ = analyze_paths([bad], all_rules(), root=REPO_ROOT, role="src")
    new, _ = filter_baselined(findings, load_baseline(BASELINE))
    assert any(f.rule == "BUD002" for f in new)
