"""Self-check: the shipped tree must be clean against the committed baseline.

This is the same invocation CI runs; if it fails, either fix the new
finding, suppress it with a justification comment, or (for accepted
debt) regenerate the baseline with ``--write-baseline``.
"""

import json
from pathlib import Path

from repro.analysis import analyze_paths, filter_baselined, load_baseline
from repro.analysis.rules import all_rules

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "reprolint-baseline.json"
SRC = REPO_ROOT / "src" / "repro"


def test_committed_baseline_exists_and_is_valid():
    doc = json.loads(BASELINE.read_text())
    assert doc["version"] == 1
    assert isinstance(doc["counts"], dict)


def test_src_tree_is_clean_against_committed_baseline():
    findings, files_scanned, _ = analyze_paths(
        [SRC], all_rules(), root=REPO_ROOT
    )
    new, _ = filter_baselined(findings, load_baseline(BASELINE))
    assert files_scanned > 50, "expected to scan the whole src/repro tree"
    details = "\n".join(f.format() for f in new)
    assert new == [], f"new reprolint findings (fix, suppress, or baseline):\n{details}"


def test_analysis_package_lints_itself():
    findings, files_scanned, _ = analyze_paths(
        [REPO_ROOT / "src" / "repro" / "analysis"], all_rules(), root=REPO_ROOT
    )
    assert files_scanned >= 10
    assert findings == [], "\n".join(f.format() for f in findings)


def test_bad_fixture_would_fail_the_gate():
    """End-to-end: introducing a violation makes the same gate non-zero."""
    bad = Path(__file__).parent / "fixtures" / "bad_budget_redraw.py"
    findings, _, _ = analyze_paths([bad], all_rules(), root=REPO_ROOT, role="src")
    new, _ = filter_baselined(findings, load_baseline(BASELINE))
    assert any(f.rule == "BUD002" for f in new)


def test_flow_analysis_of_src_tree_is_clean():
    """The flow rules must pass over src/repro with zero unsuppressed
    findings — every accepted release/cache site carries a justified
    inline suppression instead of a baseline entry."""
    from repro.analysis.dataflow import analyze_flow

    report = analyze_flow([SRC], root=REPO_ROOT)
    details = "\n".join(f.format() for f in report.findings)
    assert report.findings == [], f"new flow findings:\n{details}"
    assert report.n_suppressed > 0, "the justified suppressions disappeared"
    assert report.stats["modules"] > 100
    assert report.stats["fixpoint_iterations"] >= 2


def test_committed_baseline_carries_no_stale_allowance():
    """Same check as CI's --fail-on-stale: every baseline entry must be
    consumed by a live finding."""
    from repro.analysis.baseline import stale_entries

    findings, _, _ = analyze_paths([SRC], all_rules(), root=REPO_ROOT)
    stale = stale_entries(load_baseline(BASELINE), findings)
    assert stale == {}, f"stale baseline entries: {stale}"
