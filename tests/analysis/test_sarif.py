"""SARIF emission and baseline staleness: units plus CLI round trips."""

import json
from pathlib import Path

import pytest

from repro.analysis import Finding
from repro.analysis.baseline import (
    fingerprint,
    load_baseline,
    prune_baseline,
    stale_entries,
    write_baseline,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.dataflow import flow_rule_catalogue
from repro.analysis.rules import all_rules
from repro.analysis.sarif import SARIF_VERSION, sarif_report

FIXTURES = Path(__file__).parent / "fixtures"
BAD = str(FIXTURES / "bad_float_eq.py")
CLEAN = str(FIXTURES / "clean.py")


def _finding(rule="PRIV001", path="src/repro/x.py", line=10, col=3):
    return Finding(
        path=path, line=line, col=col, rule=rule, message="raw reaches a sink"
    )


class TestSarifReport:
    def test_document_shape(self):
        doc = sarif_report([_finding()], flow_rule_catalogue())
        assert doc["version"] == SARIF_VERSION
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "reprolint"
        assert {r["id"] for r in driver["rules"]} == {
            r.id for r in flow_rule_catalogue()
        }
        (result,) = run["results"]
        assert result["ruleId"] == "PRIV001"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region == {"startLine": 10, "startColumn": 3}

    def test_rule_index_points_into_the_catalogue(self):
        rules = flow_rule_catalogue()
        doc = sarif_report([_finding(rule=rules[2].id)], rules)
        result = doc["runs"][0]["results"][0]
        assert result["ruleIndex"] == 2

    def test_partial_fingerprint_matches_baseline_identity(self):
        finding = _finding()
        doc = sarif_report([finding], flow_rule_catalogue())
        prints = doc["runs"][0]["results"][0]["partialFingerprints"]
        assert prints["reprolint/v1"] == fingerprint(finding)

    def test_classic_rules_satisfy_the_rulelike_protocol(self):
        doc = sarif_report([], all_rules())
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        assert rules and all(r["fullDescription"]["text"] for r in rules)

    def test_zero_column_is_clamped_to_one(self):
        doc = sarif_report([_finding(col=0)], flow_rule_catalogue())
        region = doc["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["region"]
        assert region["startColumn"] == 1

    def test_document_is_json_serializable(self):
        doc = sarif_report([_finding()], flow_rule_catalogue())
        assert json.loads(json.dumps(doc)) == doc


class TestSarifCli:
    def test_format_sarif_emits_a_valid_document(self, capsys):
        assert lint_main([BAD, "--role", "src", "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == SARIF_VERSION
        assert any(
            r["ruleId"] == "FLT001" for r in doc["runs"][0]["results"]
        )

    def test_clean_sarif_run_still_carries_the_catalogue(self, capsys):
        assert lint_main([CLEAN, "--role", "src", "--format", "sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"] == []
        assert doc["runs"][0]["tool"]["driver"]["rules"]


class TestStaleEntries:
    def test_consumed_allowance_is_not_stale(self):
        f = _finding(rule="FLT001")
        baseline = {fingerprint(f): 1}
        assert stale_entries(baseline, [f]) == {}

    def test_excess_allowance_is_reported(self):
        f = _finding(rule="FLT001")
        baseline = {fingerprint(f): 3, "BUD002::src/repro/gone.py": 2}
        stale = stale_entries(baseline, [f])
        assert stale == {
            fingerprint(f): 2,
            "BUD002::src/repro/gone.py": 2,
        }


class TestPruneBaseline:
    def test_prune_clamps_and_drops(self, tmp_path):
        f = _finding(rule="FLT001")
        path = tmp_path / "baseline.json"
        write_baseline(path, [f, f, _finding(rule="DET001", path="old.py")])
        # Only one FLT001 finding remains live; DET001's file is gone.
        stale, remaining = prune_baseline(path, [f])
        assert stale == {fingerprint(f): 1, "DET001::old.py": 1}
        assert remaining == 1
        assert load_baseline(path) == {fingerprint(f): 1}

    def test_prune_is_idempotent(self, tmp_path):
        f = _finding(rule="FLT001")
        path = tmp_path / "baseline.json"
        write_baseline(path, [f])
        prune_baseline(path, [f])
        stale, remaining = prune_baseline(path, [f])
        assert stale == {} and remaining == 1


class TestStaleCli:
    @pytest.fixture()
    def stale_baseline(self, tmp_path):
        """A baseline carrying allowance the CLEAN fixture never uses."""
        path = tmp_path / "baseline.json"
        write_baseline(
            path, [Finding(path=CLEAN, line=1, col=1, rule="FLT001", message="x")]
        )
        return str(path)

    def test_fail_on_stale_trips_on_excess_allowance(
        self, capsys, stale_baseline
    ):
        code = lint_main(
            [CLEAN, "--role", "src", "--baseline", stale_baseline, "--fail-on-stale"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "stale baseline entry" in err
        assert "--prune-baseline" in err

    def test_without_the_flag_stale_allowance_passes(self, stale_baseline):
        assert lint_main([CLEAN, "--role", "src", "--baseline", stale_baseline]) == 0

    def test_prune_baseline_clears_the_staleness(self, capsys, stale_baseline):
        assert (
            lint_main(
                [
                    CLEAN,
                    "--role",
                    "src",
                    "--baseline",
                    stale_baseline,
                    "--prune-baseline",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "pruned" in out
        assert load_baseline(Path(stale_baseline)) == {}
        assert (
            lint_main(
                [
                    CLEAN,
                    "--role",
                    "src",
                    "--baseline",
                    stale_baseline,
                    "--fail-on-stale",
                ]
            )
            == 0
        )

    def test_stale_flags_require_a_baseline(self):
        with pytest.raises(SystemExit) as exc:
            lint_main([CLEAN, "--fail-on-stale"])
        assert exc.value.code == 2
