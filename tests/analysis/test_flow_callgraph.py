"""Call-graph builder tests: resolution shapes over the flowpkg fixture."""

from repro.analysis.dataflow import CallGraph

from tests.analysis.conftest import flow_policy

PIPE = "flowpkg.pipeline"


def _graph(flow_project):
    return CallGraph.build(flow_project, flow_policy())


class TestProjectIndex:
    def test_modules_functions_classes_indexed(self, flow_project):
        assert PIPE in flow_project.modules
        assert f"{PIPE}.leak_to_ads" in flow_project.functions
        assert "flowpkg.mech.Gaussian" in flow_project.classes
        assert flow_project.subclasses["flowpkg.mech.Mechanism"] == [
            "flowpkg.mech.Gaussian"
        ]

    def test_scalar_attrs_from_annotations(self, flow_project):
        entry = flow_project.classes["flowpkg.profile.Entry"]
        assert "count" in entry.scalar_attrs

    def test_fixture_files_have_src_role(self, flow_project):
        assert all(
            ctx.role == "src" for ctx in flow_project.modules.values()
        ), "tmp fixture paths must not be classified as test code"


class TestDirectCalls:
    def test_imported_function_resolves(self, flow_project):
        graph = _graph(flow_project)
        assert "flowpkg.ads.serve" in graph.edges[f"{PIPE}.leak_to_ads"]

    def test_constructor_resolves_to_class(self, flow_project):
        graph = _graph(flow_project)
        sites = graph.sites[f"{PIPE}.uncharged_release"]
        constructed = [s.constructed for s in sites if s.constructed]
        assert constructed == ["flowpkg.mech.Gaussian"]


class TestMethodDispatch:
    def test_local_constructor_assignment_types_receiver(self, flow_project):
        graph = _graph(flow_project)
        env = graph.local_env[f"{PIPE}.sanitized_to_ads"]
        assert env["mech"] == "flowpkg.mech.Gaussian"
        assert env["ledger"] == "flowpkg.mech.Ledger"
        # mech.obfuscate dispatches to the concrete override only.
        obf = [
            s
            for s in graph.sites[f"{PIPE}.sanitized_to_ads"]
            if s.attr == "obfuscate"
        ]
        assert obf and obf[0].callees == ["flowpkg.mech.Gaussian.obfuscate"]

    def test_protocol_annotation_expands_to_overrides(self, flow_project):
        """mech: Mechanism dispatches to the base def and every subclass."""
        graph = _graph(flow_project)
        obf = [
            s
            for s in graph.sites[f"{PIPE}.apply_protocol"]
            if s.attr == "obfuscate"
        ]
        assert obf
        assert set(obf[0].callees) == {
            "flowpkg.mech.Mechanism.obfuscate",
            "flowpkg.mech.Gaussian.obfuscate",
        }


class TestParallelMapIndirection:
    def test_worker_reference_becomes_an_edge(self, flow_project):
        graph = _graph(flow_project)
        fan = [s for s in graph.sites[f"{PIPE}.fan_out"] if s.is_parallel_map]
        assert len(fan) == 1
        assert fan[0].workers == [f"{PIPE}._worker"]
        assert f"{PIPE}._worker" in graph.edges[f"{PIPE}.fan_out"]
        assert graph.worker_functions() == [f"{PIPE}._worker"]

    def test_worker_reachability(self, flow_project):
        graph = _graph(flow_project)
        reachable = graph.reachable_from(graph.worker_functions())
        assert f"{PIPE}._worker" in reachable


class TestLoopElementTyping:
    def test_plain_loop_over_annotated_container(self, flow_project):
        env = _graph(flow_project).local_env[f"{PIPE}.ranked"]
        assert env["entry2"] == "flowpkg.profile.Entry"

    def test_enumerate_unwraps_to_element(self, flow_project):
        env = _graph(flow_project).local_env[f"{PIPE}.ranked"]
        assert env["entry"] == "flowpkg.profile.Entry"
        assert "rank" not in env

    def test_constructor_chained_receiver(self, flow_project):
        """Prof().top(3) resolves through the constructed class."""
        env = _graph(flow_project).local_env[f"{PIPE}.ranked"]
        assert env["entry3"] == "flowpkg.profile.Entry"
