"""Typing/style gates — run only where the tools exist (CI installs them).

The container running tier-1 tests may not ship mypy/ruff; these tests
skip rather than fail there, and CI's lint job runs the same commands
unconditionally.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

STRICT_PACKAGES = ["repro.core", "repro.parallel", "repro.analysis", "repro.obs"]
STRICT_MODULES = ["repro.experiments.runner"]


def _run(argv):
    return subprocess.run(
        argv, capture_output=True, text=True, cwd=REPO_ROOT
    )


def test_mypy_strict_modules():
    pytest.importorskip("mypy", reason="mypy not installed (CI-only gate)")
    args = [sys.executable, "-m", "mypy"]
    for package in STRICT_PACKAGES:
        args += ["-p", package]
    for module in STRICT_MODULES:
        args += ["-m", module]
    proc = _run(args)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_ruff_check():
    pytest.importorskip("ruff", reason="ruff not installed (CI-only gate)")
    proc = _run([sys.executable, "-m", "ruff", "check", "src", "tests"])
    assert proc.returncode == 0, proc.stdout + proc.stderr
