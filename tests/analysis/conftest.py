"""Shared fixtures for the flow-analysis tests.

The dataflow engine analyzes whole projects, so these tests materialize
a small ``src/flowpkg`` package in a tmp directory and run the analysis
with a :class:`~repro.analysis.dataflow.FlowPolicy` whose trust
boundary points at the fixture's own names.  Everything is static — the
fixture files are parsed, never imported.
"""

import textwrap
from dataclasses import replace
from pathlib import Path

import pytest

from repro.analysis.dataflow import FlowPolicy, Project, default_policy

FLOWPKG_FILES = {
    "__init__.py": "",
    "datagen.py": """
        from typing import List


        def make_trace() -> List[float]:
            return [1.0, 2.0]
        """,
    "mech.py": """
        class Ledger:
            def spend(self, amount: float) -> None:
                pass


        class Mechanism:
            def obfuscate(self, xs):
                return xs


        class Gaussian(Mechanism):
            def obfuscate(self, xs):
                return xs
        """,
    "ads.py": """
        def serve(location) -> None:
            pass
        """,
    "par.py": """
        def parallel_map(fn, items, payload=None):
            return [fn(item, None, payload) for item in items]
        """,
    "profile.py": """
        from typing import List


        class Entry:
            count: int

            def __init__(self, count: int) -> None:
                self.count = count


        class Prof:
            def __init__(self) -> None:
                self.entries: List[Entry] = []

            def top(self, k: int) -> List[Entry]:
                return self.entries[:k]
        """,
    "pipeline.py": """
        import numpy as np

        from flowpkg.ads import serve
        from flowpkg.datagen import make_trace
        from flowpkg.mech import Gaussian, Ledger, Mechanism
        from flowpkg.par import parallel_map
        from flowpkg.profile import Prof


        def leak_to_ads() -> None:
            trace = make_trace()
            serve(trace)


        def sanitized_to_ads() -> None:
            trace = make_trace()
            mech = Gaussian()
            ledger = Ledger()
            safe = mech.obfuscate(trace)
            ledger.spend(1.0)
            serve(safe)


        def uncharged_release():
            mech = Gaussian()
            return mech.obfuscate([0.0])


        def print_leak() -> None:
            print(make_trace())


        def cache_leak(cache) -> None:
            cache.store("key", make_trace())


        def suppressed_leak() -> None:
            trace = make_trace()
            # reprolint: disable=PRIV001
            serve(trace)


        def sink_helper(rows) -> None:
            serve(rows)


        def transitive_leak() -> None:
            sink_helper(make_trace())


        def apply_protocol(mech: Mechanism, xs):
            out = mech.obfuscate(xs)
            Ledger().spend(1.0)
            return out


        def _worker(chunk, rng, payload):
            global _STATE
            _STATE = payload
            return chunk


        _STATE = None


        def fan_out() -> None:
            rng = np.random.default_rng(0)
            parallel_map(_worker, [1, 2], payload=rng)


        def ranked(p: Prof) -> None:
            for rank, entry in enumerate(p.top(3), start=1):
                serve(entry.count)
            for entry2 in p.top(3):
                pass
            for entry3 in Prof().top(3):
                pass
        """,
}


def flow_policy() -> FlowPolicy:
    """The default policy re-pointed at the flowpkg fixture names."""
    return replace(
        default_policy(),
        source_prefixes=(),
        source_functions=frozenset({"flowpkg.datagen.make_trace"}),
        ads_prefixes=("flowpkg.ads.",),
        obs_prefixes=(),
        cache_store_qnames=frozenset(),
        report_qnames=frozenset(),
        charge_exempt_prefixes=("flowpkg.mech",),
        parallel_map_qnames=frozenset({"flowpkg.par.parallel_map"}),
        det_exempt_prefixes=("flowpkg.par",),
        sink_exempt_prefixes=(),
    )


def write_flowpkg(tmp_path: Path) -> Path:
    """Materialize the fixture package; returns the ``src`` root."""
    pkg = tmp_path / "src" / "flowpkg"
    pkg.mkdir(parents=True)
    for name, source in FLOWPKG_FILES.items():
        (pkg / name).write_text(textwrap.dedent(source))
    return tmp_path / "src"


@pytest.fixture()
def flow_src(tmp_path):
    """Path to the fixture project's ``src`` directory."""
    return write_flowpkg(tmp_path)


@pytest.fixture()
def flow_project(flow_src):
    """The fixture package loaded as a :class:`Project`."""
    return Project.load([flow_src], root=flow_src.parent)
