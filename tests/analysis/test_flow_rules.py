"""End-to-end flow-rule tests: PRIV/BUD/DET findings over flowpkg."""

import textwrap

import pytest

from repro.analysis.dataflow import analyze_flow, flow_rule_catalogue

from tests.analysis.conftest import flow_policy

PIPE = "src/flowpkg/pipeline.py"


@pytest.fixture()
def report(flow_src):
    return analyze_flow([flow_src], root=flow_src.parent, policy=flow_policy())


def _rules_at(report, path_tail):
    return {
        (f.rule, f.line) for f in report.findings if f.path.endswith(path_tail)
    }


class TestCatalogue:
    def test_catalogue_is_family_ordered_and_complete(self):
        ids = [r.id for r in flow_rule_catalogue()]
        assert len(ids) == len(set(ids))
        assert {"PRIV001", "PRIV004", "BUD101", "DET201", "DET202"} <= set(ids)
        # Families stay grouped: every PRIV before every BUD before DET.
        families = [i[: len(i) - 3] for i in ids]
        assert families == sorted(families, key=["PRIV", "BUD", "DET"].index)


class TestPrivRules:
    def test_raw_source_to_ads_sink(self, report):
        priv1 = [f for f in report.findings if f.rule == "PRIV001"]
        # leak_to_ads's serve(trace) and transitive_leak's helper call;
        # suppressed_leak's copy is suppressed, not reported.
        assert len(priv1) == 2

    def test_sanitized_flow_is_clean(self, report):
        # sanitized_to_ads obfuscates then charges: no finding of any kind.
        assert not any("sanitized_to_ads" in f.message for f in report.findings)

    def test_print_of_raw_is_priv004(self, report):
        assert any(f.rule == "PRIV004" for f in report.findings)

    def test_attr_store_of_raw_is_priv003(self, report):
        assert any(f.rule == "PRIV003" for f in report.findings)

    def test_transitive_flow_through_parameter(self, report):
        transitive = [
            f
            for f in report.findings
            if f.rule == "PRIV001" and "parameter 'rows'" in f.message
        ]
        assert len(transitive) == 1
        assert "sink_helper" in transitive[0].message


class TestBudRules:
    def test_uncharged_sanitizer_call_is_bud101(self, report):
        bud = [f for f in report.findings if f.rule == "BUD101"]
        assert len(bud) == 1
        assert "uncharged_release" in bud[0].message

    def test_charged_function_is_exempt(self, report):
        assert not any(
            f.rule == "BUD101" and "sanitized_to_ads" in f.message
            for f in report.findings
        )


class TestDetRules:
    def test_rng_across_parallel_boundary_is_det201(self, report):
        det = [f for f in report.findings if f.rule == "DET201"]
        assert len(det) == 1

    def test_worker_global_write_is_det202(self, report):
        det = [f for f in report.findings if f.rule == "DET202"]
        assert len(det) == 1
        assert "_worker" in det[0].message


class TestSuppression:
    def test_standalone_comment_suppresses_the_flow_finding(self, report):
        # suppressed_leak's serve(trace) is identical to leak_to_ads's,
        # but carries a disable=PRIV001 comment above it.
        assert report.n_suppressed == 1
        assert not any(
            "suppressed_leak" in f.message for f in report.findings
        )


class TestStatsAndDeterminism:
    def test_stats_report_project_shape(self, report):
        assert report.stats["modules"] == 7
        assert report.stats["fixpoint_iterations"] >= 1
        assert report.stats["call_sites"] > 0

    def test_findings_are_sorted_and_stable(self, flow_src):
        pol = flow_policy()
        a = analyze_flow([flow_src], root=flow_src.parent, policy=pol)
        b = analyze_flow([flow_src], root=flow_src.parent, policy=pol)
        assert a.findings == b.findings
        assert a.findings == sorted(a.findings)


class TestRoleFiltering:
    def test_findings_in_test_files_are_dropped(self, tmp_path):
        pkg = tmp_path / "src" / "flowpkg"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "datagen.py").write_text(
            "def make_trace():\n    return [1.0]\n"
        )
        tests_dir = tmp_path / "src" / "flowpkg" / "tests"
        tests_dir.mkdir()
        (tests_dir / "__init__.py").write_text("")
        (tests_dir / "test_leak.py").write_text(
            textwrap.dedent(
                """
                from flowpkg.datagen import make_trace


                def check():
                    print(make_trace())
                """
            )
        )
        report = analyze_flow(
            [tmp_path / "src"], root=tmp_path, policy=flow_policy()
        )
        assert report.findings == []
