"""Per-rule tests: each bad fixture trips exactly its rule; clean.py trips none."""

from pathlib import Path

import pytest

from repro.analysis import analyze_source
from repro.analysis.rules import all_rules, rules_by_id

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture file -> (rule id, expected number of findings under role="src").
EXPECTATIONS = {
    "bad_rng_legacy.py": ("RNG001", 2),
    "bad_rng_stdlib.py": ("RNG002", 2),
    "bad_rng_unseeded.py": ("RNG003", 2),
    "bad_rng_nonlocal.py": ("RNG004", 1),
    "bad_budget_primitive.py": ("BUD001", 1),
    "bad_budget_redraw.py": ("BUD002", 1),
    "bad_det_clock.py": ("DET001", 2),
    "bad_det_set.py": ("DET002", 2),
    "bad_det_listing.py": ("DET003", 2),
    "bad_float_eq.py": ("FLT001", 2),
    "bad_mutable_default.py": ("MUT001", 2),
    "bad_docstring.py": ("DOC001", 1),
    "bad_annotations.py": ("DOC002", 2),
    "bad_perf_scalar_loop.py": ("PERF001", 2),
    "bad_perf_csr_loop.py": ("PERF002", 2),
    "bad_perf_materialize.py": ("PERF003", 2),
}

#: Fixtures whose rule only applies inside a specific package get a
#: synthetic module path (analyze_source derives the module from it).
MODULE_PATHS = {
    "bad_perf_csr_loop.py": Path("src/repro/experiments/bad_perf_csr_loop.py"),
    "bad_perf_materialize.py": Path(
        "src/repro/experiments/bad_perf_materialize.py"
    ),
}


def _analyze(name, rules, role="src"):
    path = FIXTURES / name
    return analyze_source(
        path.read_text(), MODULE_PATHS.get(name, path), rules, role=role
    )


def test_every_rule_has_a_fixture():
    covered = {rule_id for rule_id, _ in EXPECTATIONS.values()}
    assert covered == set(rules_by_id()), "each rule needs a bad_* fixture"


@pytest.mark.parametrize(("fixture", "expected"), sorted(EXPECTATIONS.items()))
def test_bad_fixture_trips_its_rule(fixture, expected):
    rule_id, count = expected
    rule = rules_by_id()[rule_id]
    findings, _ = _analyze(fixture, [rule])
    assert len(findings) == count
    assert all(f.rule == rule_id for f in findings)
    assert all(f.line > 0 and f.col > 0 for f in findings)


@pytest.mark.parametrize("fixture", sorted(EXPECTATIONS))
def test_bad_fixtures_are_single_issue(fixture):
    """A fixture must not trip unrelated rules — keeps diagnoses precise."""
    expected_rule, _ = EXPECTATIONS[fixture]
    findings, _ = _analyze(fixture, all_rules())
    assert {f.rule for f in findings} == {expected_rule}


def test_clean_fixture_is_clean_under_all_rules():
    findings, n_suppressed = _analyze("clean.py", all_rules())
    assert findings == []
    assert n_suppressed == 0


@pytest.mark.parametrize(
    "fixture",
    [
        "bad_rng_unseeded.py",
        "bad_rng_nonlocal.py",
        "bad_budget_redraw.py",
        "bad_det_clock.py",
        "bad_float_eq.py",
        "bad_docstring.py",
    ],
)
def test_src_only_rules_relax_for_test_role(fixture):
    """Stochastic/doc discipline is deliberately relaxed in test code."""
    rule_id, _ = EXPECTATIONS[fixture]
    rule = rules_by_id()[rule_id]
    findings, _ = _analyze(fixture, [rule], role="test")
    assert findings == []


def test_mutable_default_applies_to_tests_too():
    """MUT001 is a correctness bug everywhere, including test code."""
    rule = rules_by_id()["MUT001"]
    findings, _ = _analyze("bad_mutable_default.py", [rule], role="test")
    assert len(findings) == 2


def test_rule_catalogue_metadata():
    rules = all_rules()
    ids = [r.id for r in rules]
    assert len(ids) == len(set(ids)), "rule ids must be unique"
    assert ids == sorted(ids), "all_rules() must be deterministic (sorted by id)"
    assert len(ids) >= 6, "ISSUE requires at least six repo-specific rules"
    for rule in rules:
        assert rule.name, rule.id
        assert rule.rationale, rule.id


def test_budget_rules_exempt_sanctioned_modules():
    src = FIXTURES.joinpath("bad_budget_primitive.py").read_text()
    rule = rules_by_id()["BUD001"]
    findings, _ = analyze_source(
        src, Path("src/repro/core/mechanism.py"), [rule], role="src"
    )
    assert findings == [], "repro.core may call noise primitives directly"


def test_perf002_only_applies_to_experiment_modules():
    """The kernels themselves loop over offsets by design (RNG streams)."""
    src = FIXTURES.joinpath("bad_perf_csr_loop.py").read_text()
    rule = rules_by_id()["PERF002"]
    findings, _ = analyze_source(
        src, Path("src/repro/kernels/gaussian.py"), [rule], role="src"
    )
    assert findings == []


def test_det003_accepts_sorted_wrapper():
    src = (
        "import os\n"
        "def load(root: str) -> list:\n"
        "    return sorted(n for n in os.listdir(root))\n"
    )
    rule = rules_by_id()["DET003"]
    findings, _ = analyze_source(src, Path("x.py"), [rule], role="src")
    assert findings == []


def test_perf003_only_applies_to_experiment_modules():
    """Kernels and the data plane copy columns deliberately (canonicalise)."""
    src = FIXTURES.joinpath("bad_perf_materialize.py").read_text()
    rule = rules_by_id()["PERF003"]
    findings, _ = analyze_source(
        src, Path("src/repro/kernels/profiles.py"), [rule], role="src"
    )
    assert findings == []
