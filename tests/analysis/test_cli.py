"""CLI tests: exit codes, JSON report schema, baseline flow, repro wiring."""

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main as lint_main
from repro.analysis.rules import all_rules

FIXTURES = Path(__file__).parent / "fixtures"

CLEAN = str(FIXTURES / "clean.py")
BAD = str(FIXTURES / "bad_float_eq.py")


def test_clean_file_exits_zero(capsys):
    assert lint_main([CLEAN, "--role", "src"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_bad_file_exits_one(capsys):
    assert lint_main([BAD, "--role", "src"]) == 1
    out = capsys.readouterr().out
    assert "FLT001" in out


def test_auto_role_relaxes_fixture_under_tests_dir():
    """Path-based role detection treats tests/** as test code."""
    assert lint_main([BAD]) == 0


def test_unknown_path_is_usage_error():
    with pytest.raises(SystemExit) as exc:
        lint_main(["does/not/exist.py"])
    assert exc.value.code == 2


@pytest.mark.parametrize("flag", ["--select", "--ignore"])
def test_unknown_rule_id_is_usage_error(flag):
    with pytest.raises(SystemExit) as exc:
        lint_main([CLEAN, flag, "NOPE999"])
    assert exc.value.code == 2


def test_select_and_ignore_narrow_the_run(capsys):
    assert lint_main([BAD, "--role", "src", "--select", "MUT001"]) == 0
    assert lint_main([BAD, "--role", "src", "--ignore", "FLT001"]) == 0
    assert lint_main([BAD, "--role", "src", "--select", "FLT001"]) == 1
    capsys.readouterr()


def test_json_report_schema(capsys):
    code = lint_main([BAD, "--role", "src", "--format", "json"])
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == 1
    assert report["tool"] == "reprolint"
    assert report["files_scanned"] == 1
    assert report["rules"] == [r.id for r in all_rules()]
    assert report["counts"] == {"FLT001": 2}
    assert report["suppressed"] == 0
    assert report["baselined"] == 0
    for item in report["findings"]:
        assert set(item) == {"path", "line", "col", "rule", "message"}
        assert item["rule"] == "FLT001"


def test_write_baseline_then_rerun_is_clean(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert lint_main([BAD, "--role", "src", "--write-baseline", str(baseline)]) == 0
    doc = json.loads(baseline.read_text())
    assert doc["version"] == 1 and sum(doc["counts"].values()) == 2
    capsys.readouterr()  # drain the "wrote baseline" notice

    code = lint_main(
        [BAD, "--role", "src", "--baseline", str(baseline), "--format", "json"]
    )
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["findings"] == []
    assert report["baselined"] == 2


def test_corrupt_baseline_is_usage_error(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text('{"version": 1}')
    with pytest.raises(SystemExit) as exc:
        lint_main([CLEAN, "--baseline", str(bad)])
    assert exc.value.code == 2


def test_list_rules_prints_catalogue(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.id in out


def test_repro_cli_lint_subcommand(capsys):
    from repro.cli import main as repro_main

    assert repro_main(["lint", CLEAN, "--role", "src"]) == 0
    assert repro_main(["lint", BAD, "--role", "src"]) == 1
    capsys.readouterr()


def test_python_dash_m_entrypoint():
    import os
    import subprocess
    import sys

    repo_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ, PYTHONPATH=str(repo_root / "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", BAD, "--role", "src"],
        capture_output=True,
        text=True,
        cwd=repo_root,
        env=env,
    )
    assert proc.returncode == 1
    assert "FLT001" in proc.stdout


class TestFlowCli:
    """``--flow`` switches the CLI to the dataflow engine and catalogue."""

    @pytest.fixture()
    def leak_project(self, tmp_path):
        """A minimal src-layout package with a raw-print flow leak."""
        pkg = tmp_path / "src" / "leakpkg"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text(
            "from repro.datagen.population import generate_population\n"
            "\n"
            "\n"
            "def leak():\n"
            "    pop = generate_population()\n"
            "    print(pop)\n"
        )
        return str(tmp_path / "src")

    def test_flow_list_rules_prints_the_flow_catalogue(self, capsys):
        from repro.analysis.dataflow import flow_rule_catalogue

        assert lint_main(["--flow", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in flow_rule_catalogue():
            assert rule.id in out
        assert "FLT001" not in out

    def test_flow_finds_the_leak(self, capsys, leak_project):
        assert lint_main([leak_project, "--flow"]) == 1
        out = capsys.readouterr().out
        assert "PRIV004" in out

    def test_flow_select_narrows_the_run(self, capsys, leak_project):
        assert lint_main([leak_project, "--flow", "--select", "DET201"]) == 0
        capsys.readouterr()

    def test_flow_json_report_uses_the_flow_catalogue(self, capsys, leak_project):
        from repro.analysis.dataflow import flow_rule_catalogue

        assert lint_main([leak_project, "--flow", "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["rules"] == [r.id for r in flow_rule_catalogue()]
        assert report["counts"].get("PRIV004") == 1
        assert report["files_scanned"] == 2

    def test_classic_rule_ids_are_unknown_under_flow(self, leak_project):
        with pytest.raises(SystemExit) as exc:
            lint_main([leak_project, "--flow", "--select", "FLT001"])
        assert exc.value.code == 2

    def test_flow_sarif_document(self, capsys, leak_project):
        assert lint_main([leak_project, "--flow", "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        results = doc["runs"][0]["results"]
        assert any(r["ruleId"] == "PRIV004" for r in results)
