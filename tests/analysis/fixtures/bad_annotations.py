"""DOC002 fixture: public functions with incomplete annotations."""


def no_types(x, y):
    """Parameters and return degrade to Any under mypy."""
    return x + y


def no_return(x: float):
    """Annotated parameter but unannotated return."""
    return x
