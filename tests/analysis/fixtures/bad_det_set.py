"""DET002 fixture: order-sensitive consumption of a set."""

from typing import List


def user_order(user_ids: set) -> List[str]:
    """Hash-randomised iteration order reaches the output list."""
    out = []
    for uid in set(user_ids):
        out.append(str(uid))
    return out + list({"a", "b"})
