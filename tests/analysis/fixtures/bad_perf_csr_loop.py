"""PERF002 fixture: per-user CSR loops in an experiment chunk worker."""

from typing import List

import numpy as np


def attack_chunk(pop: object, offsets: np.ndarray, reported: np.ndarray) -> List[int]:
    """Slices one user per iteration instead of using a population kernel."""
    rows = []
    for i in range(len(offsets) - 1):
        coords = pop.user_coords(i)
        window = reported[offsets[i]:]
        rows.append(len(coords) + len(window))
    return rows
