"""FLT001 fixture: exact equality against float literals."""


def reached_boundary(p: float, q: float) -> bool:
    """Rounded probabilities will never exactly equal these literals."""
    return p == 1.0 or q != -0.5
