"""MUT001 fixture: mutable default arguments shared across calls."""

from typing import List


def record(value: float, log: List[float] = [], *, tags: dict = {}) -> List[float]:
    """Both defaults persist between experiment invocations."""
    log.append(value)
    tags["last"] = value
    return log
