"""BUD002 fixture: fresh mechanism draws per loop iteration."""

from typing import List


def serve_ads(mechanism: object, location: object, releases: int) -> List[object]:
    """Re-draw noise on every ad release — the longitudinal leak."""
    outputs = []
    for _ in range(releases):
        outputs.append(mechanism.obfuscate_one(location))
    return outputs
