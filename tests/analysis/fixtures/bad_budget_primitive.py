"""BUD001 fixture: raw noise primitive outside the sanctioned modules."""

import numpy as np

from repro.core.sampling import sample_gaussian_noise


def leak_location(x: float, y: float, rng: np.random.Generator) -> tuple:
    """Ad-hoc noise draw that bypasses the calibrated mechanisms."""
    dx, dy = sample_gaussian_noise(250.0, rng)
    return x + dx, y + dy
