"""RNG001 fixture: sampling via numpy's legacy global RandomState."""

import numpy as np
from numpy import random as npr


def jitter(x: float) -> float:
    """Perturb ``x`` with hidden global state (two alias spellings)."""
    a = np.random.normal(0.0, 1.0)
    b = npr.uniform(-1.0, 1.0)
    return x + a + b
