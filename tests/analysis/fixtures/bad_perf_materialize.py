"""PERF003 fixture: whole-shard heap copies in an experiment driver."""

import hashlib

import numpy as np


def digest_chunk(xs: np.ndarray, top_offsets: np.ndarray) -> bytes:
    """Copies whole (possibly memmap-backed) CSR columns onto the heap."""
    heap_xs = np.asarray(xs)
    heap_tops = top_offsets.copy()
    return hashlib.sha256(heap_xs.tobytes() + heap_tops.tobytes()).digest()
