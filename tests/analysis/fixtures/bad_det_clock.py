"""DET001 fixture: wall-clock reads feeding results."""

import time
from datetime import datetime


def stamp_result(value: float) -> dict:
    """Output depends on when the run started."""
    return {"value": value, "at": time.time(), "day": datetime.now()}
