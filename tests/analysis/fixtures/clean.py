"""A file that violates no reprolint rule, even under ``role="src"``."""

import math
from typing import List, Optional

import numpy as np


def scaled_norm(x: float, y: float, scale: float = 1.0) -> float:
    """Euclidean norm of ``(x, y)`` divided by ``scale``."""
    if math.isclose(scale, 0.0):
        raise ValueError("scale must be nonzero")
    return math.hypot(x, y) / scale


def draw_offsets(n: int, rng: np.random.Generator) -> List[float]:
    """``n`` uniform offsets from an explicitly threaded Generator."""
    return [float(v) for v in rng.uniform(-1.0, 1.0, size=n)]


class Accumulator:
    """Sums values, constructing its own storage per instance."""

    def __init__(self, seed_values: Optional[List[float]] = None) -> None:
        """Start from ``seed_values`` (copied) or empty."""
        self._values: List[float] = list(seed_values or [])

    def add(self, value: float) -> None:
        """Append one value."""
        self._values.append(value)

    def total(self) -> float:
        """Sum of everything added so far."""
        return math.fsum(self._values)
