"""DET003 fixture: directory listings consumed in filesystem order."""

import glob
import os
from typing import List


def load_batches(root: str) -> List[str]:
    """Entry order differs across machines; no sorted(...) wrapper."""
    names = [n for n in os.listdir(root)]
    return names + glob.glob(root + "/*.json")
