"""DOC001 fixture: a public function with no docstring."""


def undocumented(x: float) -> float:
    return x * 2.0
