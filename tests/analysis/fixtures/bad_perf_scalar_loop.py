"""PERF001 fixture: per-element hot-path calls where a batch API exists."""

from typing import List

from repro.core.posterior import posterior_weights


def pick_all(selector: object, candidate_sets: List[object]) -> List[int]:
    """One selection per set through the scalar entry point."""
    picks = []
    for candidates in candidate_sets:
        picks.append(selector.select_index(candidates))
    return picks


def weigh_all(candidate_sets: List[object], sigma: float) -> list:
    """Per-set posterior weights instead of one array pass."""
    return [posterior_weights(candidates, sigma) for candidates in candidate_sets]
