"""RNG003 fixture: ``default_rng()`` with no seed in library code."""

import numpy as np
from numpy.random import default_rng


def make_generators() -> tuple:
    """Two unseeded Generators: OS entropy, never reproducible."""
    return default_rng(), np.random.default_rng()
