"""Suppression fixture: three violations, all justified away.

Exercises the inline form, the standalone-comment form (suppresses the
next line), and ``disable-file``.
"""

# reprolint: disable-file=MUT001

import time
from typing import List


def exact_sentinel(x: float) -> bool:
    """Inline suppression on the offending line."""
    return x == 0.0  # reprolint: disable=FLT001


def timed(value: float) -> dict:
    """Standalone suppression comment covering the next line."""
    # This fixture "measures" wall-clock time on purpose.
    # reprolint: disable=DET001
    return {"value": value, "at": time.time()}


def shared(log: List[float] = []) -> List[float]:
    """Silenced by the file-level MUT001 directive above."""
    return log
