"""RNG004 fixture: sampling from a module-global Generator."""

import numpy as np

_RNG = np.random.default_rng(0)


def sample_offset() -> float:
    """Draw from an RNG no caller can see or replace."""
    return float(_RNG.uniform(-1.0, 1.0))


def sample_ok(rng: np.random.Generator) -> float:
    """Fine: the Generator is an explicit parameter."""
    return float(rng.uniform(-1.0, 1.0))
