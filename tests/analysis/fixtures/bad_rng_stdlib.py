"""RNG002 fixture: the stdlib ``random`` module's process-global state."""

import random


def pick(items: list) -> object:
    """Choose an element using unseedable global state."""
    random.shuffle(items)
    return random.choice(items)
