"""Unit tests for the taint lattice and per-function summaries."""

import pytest

from repro.analysis.dataflow import (
    BOTTOM,
    RAW,
    RNG,
    Summary,
    is_param,
    join,
    param_index,
    param_label,
)
from repro.analysis.dataflow.lattice import concrete, substitute


class TestJoin:
    def test_join_is_union(self):
        assert join(frozenset({RAW}), frozenset({RNG})) == frozenset({RAW, RNG})

    def test_bottom_is_identity(self):
        assert join(BOTTOM, frozenset({RAW})) == frozenset({RAW})
        assert join() == BOTTOM

    def test_join_is_idempotent_and_commutative(self):
        a, b = frozenset({RAW}), frozenset({RNG, "p0"})
        assert join(a, a) == a
        assert join(a, b) == join(b, a)


class TestParamLabels:
    def test_round_trip(self):
        for i in (0, 1, 7, 12):
            label = param_label(i)
            assert is_param(label)
            assert param_index(label) == i

    def test_concrete_labels_are_not_params(self):
        assert not is_param(RAW)
        assert not is_param(RNG)
        assert param_index(RAW) is None
        # A bare "p" has no digits; "px" has non-digits.
        assert not is_param("p")
        assert not is_param("px")

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            param_label(-1)


class TestSubstitute:
    def test_symbolic_labels_map_to_argument_taints(self):
        value = frozenset({param_label(0), param_label(1)})
        out = substitute(value, [frozenset({RAW}), BOTTOM])
        assert out == frozenset({RAW})

    def test_concrete_labels_survive(self):
        value = frozenset({RAW, param_label(0)})
        assert substitute(value, [frozenset({RNG})]) == frozenset({RAW, RNG})

    def test_missing_positions_contribute_nothing(self):
        # p1 refers to a defaulted parameter with no call-site argument.
        value = frozenset({param_label(1)})
        assert substitute(value, [frozenset({RAW})]) == BOTTOM

    def test_concrete_strips_symbolic_labels(self):
        assert concrete(frozenset({RAW, param_label(3)})) == frozenset({RAW})


class TestSummaryMerge:
    def test_merge_is_pointwise_join(self):
        a = Summary(
            returns=frozenset({RAW}),
            sink_params={0: frozenset({"ads"})},
            charges=False,
            has_global=False,
        )
        b = Summary(
            returns=frozenset({param_label(0)}),
            sink_params={0: frozenset({"io"}), 1: frozenset({"cache"})},
            charges=True,
            has_global=True,
        )
        merged = a.merge(b)
        assert merged.returns == frozenset({RAW, param_label(0)})
        assert merged.sink_params == {
            0: frozenset({"ads", "io"}),
            1: frozenset({"cache"}),
        }
        assert merged.charges and merged.has_global

    def test_merge_with_default_is_identity(self):
        a = Summary(returns=frozenset({RAW}), charges=True)
        merged = a.merge(Summary())
        assert merged.returns == a.returns
        assert merged.charges
        assert not merged.has_global
