"""MmapStore: bundle round-trips, manifests, corruption, page release."""

import json

import numpy as np
import pytest

from repro.data.cache import StageCache, stage_key
from repro.data.mmapstore import MANIFEST_NAME, BundleWriter, MmapStore, release_pages


def _arrays():
    return {
        "xs": np.arange(10, dtype=np.float64),
        "ys": np.linspace(-1.0, 1.0, 10),
        "offsets": np.asarray([0, 4, 10], dtype=np.int64),
    }


class TestRoundTrip:
    def test_miss_then_hit(self, tmp_path):
        store = MmapStore(tmp_path)
        key = stage_key("s", {"a": 1}, "1")
        assert store.load(key) is None
        store.store(key, _arrays())
        loaded = store.load(key)
        assert loaded is not None
        for name, expected in _arrays().items():
            np.testing.assert_array_equal(loaded[name], expected)
            assert loaded[name].dtype == expected.dtype

    def test_loaded_arrays_are_readonly_memmaps(self, tmp_path):
        store = MmapStore(tmp_path)
        store.store("k", _arrays())
        loaded = store.load("k")
        for arr in loaded.values():
            assert isinstance(arr, np.memmap)
            assert not arr.flags.writeable
            with pytest.raises(ValueError):
                arr[0] = 99.0

    def test_zero_size_array_round_trips(self, tmp_path):
        store = MmapStore(tmp_path)
        store.store("k", {"empty": np.empty(0, dtype=np.float64)})
        loaded = store.load("k")
        assert loaded["empty"].shape == (0,)
        assert loaded["empty"].dtype == np.float64

    def test_disabled_store_is_inert(self, tmp_path):
        store = MmapStore(tmp_path, enabled=False)
        store.store("k", _arrays())
        assert store.load("k") is None

    def test_clear_removes_bundles(self, tmp_path):
        store = MmapStore(tmp_path)
        store.store("a", _arrays())
        store.store("b", _arrays())
        assert store.clear() == 2
        assert store.load("a") is None

    def test_for_cache_dir_sits_beside_cache(self, tmp_path):
        cache = StageCache(tmp_path)
        store = MmapStore.for_cache_dir(cache.directory)
        store.store("k", _arrays())
        assert (tmp_path / "mmap").is_dir()
        # StageCache.clear() sweeps the sibling mmap bundles too, so a
        # cold bench run is cold on both serving paths.
        assert cache.clear() >= 1
        assert store.load("k") is None


class TestCorruption:
    def test_truncated_npy_is_a_miss(self, tmp_path):
        store = MmapStore(tmp_path)
        store.store("k", _arrays())
        path = store.path_for("k") / "xs.npy"
        path.write_bytes(path.read_bytes()[:-16])
        assert store.load("k") is None
        # The broken bundle is swept; a re-store round-trips again.
        store.store("k", _arrays())
        assert store.load("k") is not None

    def test_missing_manifest_is_a_miss(self, tmp_path):
        store = MmapStore(tmp_path)
        store.store("k", _arrays())
        (store.path_for("k") / MANIFEST_NAME).unlink()
        assert store.load("k") is None

    def test_manifest_dtype_mismatch_is_a_miss(self, tmp_path):
        store = MmapStore(tmp_path)
        store.store("k", _arrays())
        manifest_path = store.path_for("k") / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["arrays"]["xs"]["dtype"] = "<i8"
        manifest_path.write_text(json.dumps(manifest))
        assert store.load("k") is None

    def test_garbage_manifest_is_a_miss(self, tmp_path):
        store = MmapStore(tmp_path)
        store.store("k", _arrays())
        (store.path_for("k") / MANIFEST_NAME).write_text("{not json")
        assert store.load("k") is None


class TestBundleWriter:
    def test_commit_publishes_atomically(self, tmp_path):
        store = MmapStore(tmp_path)
        specs = {"xs": ((4,), "<f8")}
        with store.writer("k", specs) as writer:
            assert store.load("k") is None
            writer.arrays["xs"][:] = [1.0, 2.0, 3.0, 4.0]
        loaded = store.load("k")
        np.testing.assert_array_equal(loaded["xs"], [1.0, 2.0, 3.0, 4.0])

    def test_abort_on_error_leaves_no_bundle(self, tmp_path):
        store = MmapStore(tmp_path)
        with pytest.raises(RuntimeError):
            with store.writer("k", {"xs": ((4,), "<f8")}):
                raise RuntimeError("boom")
        assert store.load("k") is None
        assert not any(store.directory.iterdir())

    def test_concurrent_commit_keeps_a_valid_bundle(self, tmp_path):
        store = MmapStore(tmp_path)
        first = BundleWriter(store, "k", {"xs": ((2,), "<f8")})
        second = BundleWriter(store, "k", {"xs": ((2,), "<f8")})
        first.arrays["xs"][:] = [1.0, 1.0]
        second.arrays["xs"][:] = [2.0, 2.0]
        first.commit()
        second.commit()
        loaded = store.load("k")
        assert loaded["xs"][0] in (1.0, 2.0)


class TestReleasePages:
    def test_accepts_memmaps_views_and_heap_arrays(self, tmp_path):
        store = MmapStore(tmp_path)
        store.store("k", _arrays())
        loaded = store.load("k")
        # Memmap, a view of one, and a heap array: all must be accepted.
        release_pages(loaded["xs"], loaded["xs"][2:5], np.arange(3.0))
        np.testing.assert_array_equal(loaded["xs"], _arrays()["xs"])
