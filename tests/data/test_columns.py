"""CheckInColumns / PopulationColumns: exact round trips and validation."""

import numpy as np
import pytest

from repro.data.columns import CheckInColumns, PopulationColumns
from repro.datagen.population import PopulationConfig, generate_population
from repro.profiles.checkin import checkins_to_array


@pytest.fixture(scope="module")
def users():
    return generate_population(PopulationConfig(n_users=6, seed=77))


@pytest.fixture(scope="module")
def pop(users):
    return PopulationColumns.from_users(users)


class TestCheckInColumns:
    def test_round_trip_is_exact(self, users):
        traces = [u.trace for u in users]
        columns = CheckInColumns.from_traces(traces)
        rebuilt = columns.to_traces()
        assert len(rebuilt) == len(traces)
        for orig, back in zip(traces, rebuilt):
            assert len(orig) == len(back)
            for a, b in zip(orig, back):
                assert a.timestamp == b.timestamp
                assert a.point.x == b.point.x
                assert a.point.y == b.point.y

    def test_user_coords_matches_object_path(self, users, pop):
        for i, user in enumerate(users):
            np.testing.assert_array_equal(
                pop.checkins.user_coords(i), checkins_to_array(user.trace)
            )

    def test_counts_and_sizes(self, users, pop):
        cols = pop.checkins
        assert cols.n_users == len(users)
        assert cols.n_checkins == sum(len(u.trace) for u in users)
        assert cols.nbytes > 0
        assert cols.coords().shape == (cols.n_checkins, 2)

    def test_timestamps_are_views(self, pop):
        ts = pop.checkins.user_timestamps(0)
        assert ts.base is pop.checkins.timestamps

    def test_iter_user_coords_order(self, pop):
        listed = list(pop.checkins.iter_user_coords())
        assert len(listed) == pop.n_users
        for i, coords in enumerate(listed):
            np.testing.assert_array_equal(coords, pop.checkins.user_coords(i))

    def test_arrays_round_trip(self, pop):
        rebuilt = CheckInColumns.from_arrays(pop.checkins.arrays())
        for name, arr in pop.checkins.arrays().items():
            np.testing.assert_array_equal(getattr(rebuilt, name), arr)

    def test_user_index_bounds(self, pop):
        with pytest.raises(IndexError):
            pop.checkins.user_coords(pop.n_users)
        with pytest.raises(IndexError):
            pop.checkins.user_coords(-1)

    @pytest.mark.parametrize(
        "offsets",
        [
            [1, 3],  # does not start at zero
            [0, 2],  # does not end at n_checkins
            [0, 2, 1, 3],  # decreasing
        ],
    )
    def test_offset_validation(self, offsets):
        with pytest.raises(ValueError):
            CheckInColumns(
                xs=np.zeros(3), ys=np.zeros(3), timestamps=np.zeros(3), offsets=offsets
            )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CheckInColumns(
                xs=np.zeros(3), ys=np.zeros(2), timestamps=np.zeros(3), offsets=[0, 3]
            )

    def test_empty_population(self):
        cols = CheckInColumns.from_traces([])
        assert cols.n_users == 0
        assert cols.n_checkins == 0


class TestPopulationColumns:
    def test_true_tops_match_object_path(self, users, pop):
        for i, user in enumerate(users):
            tops = pop.user_true_tops(i)
            assert len(tops) == len(user.true_tops)
            for a, b in zip(tops, user.true_tops):
                assert a.x == b.x
                assert a.y == b.y

    def test_arrays_round_trip(self, pop, users):
        rebuilt = PopulationColumns.from_arrays(pop.arrays())
        assert rebuilt.n_users == pop.n_users
        for i in range(pop.n_users):
            np.testing.assert_array_equal(
                rebuilt.checkins.user_coords(i), pop.checkins.user_coords(i)
            )
            assert rebuilt.user_true_tops(i) == pop.user_true_tops(i)

    def test_top_offsets_must_cover_users(self, pop):
        with pytest.raises(ValueError):
            PopulationColumns(
                checkins=pop.checkins,
                top_xs=pop.top_xs,
                top_ys=pop.top_ys,
                top_offsets=np.asarray([0, len(pop.top_xs)], dtype=np.int64),
            )
