"""StageCache: content addressing, hits/misses, invalidation, corruption."""

import numpy as np
import pytest

from repro.core.params import GeoIndBudget
from repro.data.cache import StageCache, stage_key


class TestStageKey:
    def test_deterministic(self):
        assert stage_key("s", {"a": 1}, "1") == stage_key("s", {"a": 1}, "1")

    def test_mapping_order_irrelevant(self):
        assert stage_key("s", {"a": 1, "b": 2}, "1") == stage_key(
            "s", {"b": 2, "a": 1}, "1"
        )

    def test_params_change_key(self):
        assert stage_key("s", {"a": 1}, "1") != stage_key("s", {"a": 2}, "1")

    def test_version_changes_key(self):
        assert stage_key("s", {"a": 1}, "1") != stage_key("s", {"a": 1}, "2")

    def test_stage_changes_key(self):
        assert stage_key("s", {"a": 1}, "1") != stage_key("t", {"a": 1}, "1")

    def test_dataclass_equals_field_dict(self):
        budget = GeoIndBudget(r=500.0, epsilon=1.0, delta=0.01, n=10)
        as_dict = {"r": 500.0, "epsilon": 1.0, "delta": 0.01, "n": 10}
        assert stage_key("s", budget, "1") == stage_key("s", as_dict, "1")

    def test_tuple_equals_list(self):
        assert stage_key("s", {"v": (1, 2)}, "1") == stage_key("s", {"v": [1, 2]}, "1")

    def test_numpy_scalars_canonicalise(self):
        assert stage_key("s", {"v": np.int64(3)}, "1") == stage_key(
            "s", {"v": 3}, "1"
        )

    def test_unhashable_params_rejected(self):
        with pytest.raises(TypeError):
            stage_key("s", {"v": object()}, "1")

    def test_key_prefix_is_stage_name(self):
        assert stage_key("population", {}, "1").startswith("population-")


class TestStageCache:
    def test_miss_then_hit_round_trip(self, tmp_path):
        cache = StageCache(tmp_path)
        key = stage_key("s", {"a": 1}, "1")
        assert cache.load(key) is None
        arrays = {
            "xs": np.arange(5, dtype=np.float64),
            "offsets": np.asarray([0, 5], dtype=np.int64),
        }
        cache.store(key, arrays)
        loaded = cache.load(key)
        assert set(loaded) == set(arrays)
        for name in arrays:
            np.testing.assert_array_equal(loaded[name], arrays[name])
            assert loaded[name].dtype == arrays[name].dtype
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1}

    def test_different_key_misses(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.store(stage_key("s", {"a": 1}, "1"), {"v": np.zeros(1)})
        assert cache.load(stage_key("s", {"a": 2}, "1")) is None
        assert cache.load(stage_key("s", {"a": 1}, "2")) is None

    def test_disabled_never_hits_or_writes(self, tmp_path):
        cache = StageCache(tmp_path, enabled=False)
        key = stage_key("s", {}, "1")
        assert cache.store(key, {"v": np.zeros(1)}) is None
        assert cache.load(key) is None
        assert list(tmp_path.iterdir()) == []
        assert StageCache.disabled().enabled is False

    def test_corrupt_artifact_is_a_miss_and_removed(self, tmp_path):
        cache = StageCache(tmp_path)
        key = stage_key("s", {}, "1")
        cache.store(key, {"v": np.zeros(4)})
        cache.path_for(key).write_bytes(b"not an npz")
        assert cache.load(key) is None
        assert not cache.path_for(key).exists()

    def test_get_or_compute(self, tmp_path):
        cache = StageCache(tmp_path)
        key = stage_key("s", {}, "1")
        calls = []

        def compute():
            calls.append(1)
            return {"v": np.arange(3, dtype=np.float64)}

        first = cache.get_or_compute(key, compute)
        second = cache.get_or_compute(key, compute)
        assert len(calls) == 1
        np.testing.assert_array_equal(first["v"], second["v"])

    def test_clear(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.store(stage_key("s", {"a": 1}, "1"), {"v": np.zeros(1)})
        cache.store(stage_key("s", {"a": 2}, "1"), {"v": np.zeros(1)})
        assert cache.clear() == 2
        assert cache.load(stage_key("s", {"a": 1}, "1")) is None
