"""Unit tests for the named dataset tiers and their shard streaming."""

import math

import numpy as np
import pytest

from repro.data import tiers
from repro.data.cache import StageCache
from repro.data.tiers import (
    TIERS,
    DatasetTier,
    _shard_ranges,
    tier_columns,
    tier_config,
)

TINY = DatasetTier(
    name="tiny",
    n_users=5,
    count_log_mean=math.log(30.0),
    count_log_sigma=0.3,
    max_checkins=60,
)


@pytest.fixture
def tiny_tier(monkeypatch):
    monkeypatch.setitem(tiers.TIERS, "tiny", TINY)
    monkeypatch.setattr(tiers, "TIER_SHARD_USERS", 2)


class TestTierRegistry:
    def test_named_tiers_and_scales(self):
        assert set(TIERS) >= {"small", "city", "metro-100k"}
        assert TIERS["city"].n_users == 10_000
        assert TIERS["metro-100k"].n_users == 100_000

    def test_tier_config_resolves(self):
        config = tier_config("city")
        assert config.n_users == TIERS["city"].n_users
        assert config.seed == TIERS["city"].seed

    def test_unknown_tier_is_an_error(self):
        with pytest.raises(ValueError, match="unknown tier"):
            tier_config("galaxy")

    def test_shard_ranges_cover_population(self, tiny_tier):
        ranges = _shard_ranges(5)
        assert ranges == [(0, 2), (2, 4), (4, 5)]


class TestTierColumns:
    def test_cache_state_is_invisible(self, tiny_tier, tmp_path):
        """Uncached, cold-cached and warm-cached runs are bit-identical."""
        uncached = tier_columns("tiny")
        cache = StageCache(tmp_path / "cache")
        cold = tier_columns("tiny", cache)
        warm_cache = StageCache(tmp_path / "cache")
        warm = tier_columns("tiny", warm_cache)
        assert warm_cache.stats()["hits"] == len(_shard_ranges(5))
        for pop in (cold, warm):
            np.testing.assert_array_equal(pop.checkins.xs, uncached.checkins.xs)
            np.testing.assert_array_equal(
                pop.checkins.offsets, uncached.checkins.offsets
            )
            np.testing.assert_array_equal(pop.top_xs, uncached.top_xs)
            np.testing.assert_array_equal(
                pop.top_offsets, uncached.top_offsets
            )

    def test_worker_count_is_invisible(self, tiny_tier):
        one = tier_columns("tiny", workers=1)
        two = tier_columns("tiny", workers=2)
        np.testing.assert_array_equal(one.checkins.xs, two.checkins.xs)
        np.testing.assert_array_equal(one.checkins.ys, two.checkins.ys)
        np.testing.assert_array_equal(
            one.checkins.offsets, two.checkins.offsets
        )

    def test_partially_warm_cache_fills_missing_shards(self, tiny_tier, tmp_path):
        cache = StageCache(tmp_path / "cache")
        full = tier_columns("tiny", cache)
        # Drop one shard's entry and regenerate: only that shard recomputes.
        config = tier_config("tiny")
        key = tiers._shard_key(config, 2, 4)
        cache.path_for(key).unlink()
        again = tier_columns("tiny", StageCache(tmp_path / "cache"))
        np.testing.assert_array_equal(again.checkins.xs, full.checkins.xs)
        np.testing.assert_array_equal(
            again.checkins.offsets, full.checkins.offsets
        )
