"""Cached stage builders: a hit returns exactly what a recompute would."""

import numpy as np

from repro.core.params import GeoIndBudget
from repro.data.cache import StageCache
from repro.data.stages import candidate_table, population_columns, population_coords_pool
from repro.datagen.population import PopulationConfig, iter_population
from repro.profiles.checkin import checkins_to_array

CONFIG = PopulationConfig(n_users=5, seed=31)
BUDGET = GeoIndBudget(r=500.0, epsilon=1.0, delta=0.01, n=10)


def test_population_columns_cache_is_bit_identical(tmp_path):
    fresh = population_columns(CONFIG, None)
    cold_cache = StageCache(tmp_path)
    cold = population_columns(CONFIG, cold_cache)
    warm_cache = StageCache(tmp_path)
    warm = population_columns(CONFIG, warm_cache)
    assert cold_cache.stats()["stores"] == 1
    assert warm_cache.stats() == {"hits": 1, "misses": 0, "stores": 0}
    for name, arr in fresh.arrays().items():
        np.testing.assert_array_equal(cold.arrays()[name], arr)
        np.testing.assert_array_equal(warm.arrays()[name], arr)


def test_population_coords_pool_matches_object_path(tmp_path):
    pool = population_coords_pool(CONFIG.n_users, CONFIG.seed, StageCache(tmp_path))
    expected = [checkins_to_array(u.trace) for u in iter_population(CONFIG)]
    assert len(pool) == len(expected)
    for got, want in zip(pool, expected):
        np.testing.assert_array_equal(got, want)
    # Second pool rides the same population cache entry.
    warm_cache = StageCache(tmp_path)
    population_coords_pool(CONFIG.n_users, CONFIG.seed, warm_cache)
    assert warm_cache.stats()["hits"] == 1


def test_candidate_table_cache_is_bit_identical(tmp_path):
    fresh = candidate_table(BUDGET, max_users=7, seed=3, cache=None)
    cold = candidate_table(BUDGET, max_users=7, seed=3, cache=StageCache(tmp_path))
    warm_cache = StageCache(tmp_path)
    warm = candidate_table(BUDGET, max_users=7, seed=3, cache=warm_cache)
    assert fresh.shape == (7, BUDGET.n, 2)
    np.testing.assert_array_equal(cold, fresh)
    np.testing.assert_array_equal(warm, fresh)
    assert warm_cache.stats() == {"hits": 1, "misses": 0, "stores": 0}


def test_candidate_table_params_invalidate(tmp_path):
    cache = StageCache(tmp_path)
    candidate_table(BUDGET, max_users=4, seed=3, cache=cache)
    candidate_table(BUDGET, max_users=4, seed=4, cache=cache)
    assert cache.stats()["stores"] == 2
