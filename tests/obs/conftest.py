"""Shared obs-test fixtures: the tracing runtime is process-global."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _obs_disabled_after_test():
    """Never leak an enabled runtime into the next test."""
    yield
    obs.shutdown()
    obs.get_registry().clear()
