"""Span tracing: disabled-path no-ops, file round-trip, worker absorption."""

import json

from repro import obs
from repro.obs.render import build_span_tree, read_trace
from repro.obs.trace import _NULL_SPAN, SpanRecord


class TestDisabledPath:
    def test_span_is_shared_null_object(self):
        """Disabled tracing must not allocate per call sites in hot loops."""
        assert obs.span("anything", key="value") is _NULL_SPAN
        assert obs.span("other") is _NULL_SPAN

    def test_null_span_context_is_noop(self):
        with obs.span("ignored") as s:
            s.annotate(extra=1)
        assert not obs.enabled()

    def test_shutdown_without_enable_returns_none(self):
        assert obs.shutdown() is None


class TestRoundTrip:
    def test_span_tree_survives_file_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        obs.enable(path)
        with obs.span("root", kind="test"):
            with obs.span("child-a"):
                with obs.span("grandchild"):
                    pass
            with obs.span("child-b", n=2):
                pass
        snapshot = obs.shutdown()
        assert snapshot is not None

        trace = read_trace(path)
        assert trace.header is not None
        assert trace.header["version"] == obs.TRACE_SCHEMA_VERSION
        # Spans are written on close: children appear before parents.
        assert [s.name for s in trace.spans] == [
            "grandchild",
            "child-a",
            "child-b",
            "root",
        ]
        roots = build_span_tree(trace.spans)
        assert [r.record.name for r in roots] == ["root"]
        assert [c.record.name for c in roots[0].children] == ["child-a", "child-b"]
        assert roots[0].children[0].children[0].record.name == "grandchild"
        assert roots[0].record.attrs == {"kind": "test"}
        assert all(s.seconds >= 0.0 for s in trace.spans)

    def test_record_dict_round_trip_is_exact(self):
        record = SpanRecord(
            span_id=7, parent_id=3, name="stage", attrs={"n": 1}, start=0.25, seconds=0.5
        )
        assert SpanRecord.from_dict(record.to_dict()) == record

    def test_metrics_line_written_on_shutdown(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        obs.enable(path)
        obs.get_registry().counter("events").inc(3)
        obs.shutdown()
        lines = [json.loads(l) for l in open(path, encoding="utf-8")]
        assert lines[-1]["type"] == "metrics"
        assert lines[-1]["metrics"]["counters"]["events"] == 3
        assert read_trace(path).metrics["counters"]["events"] == 3


class TestCollectAbsorb:
    def test_worker_spans_attach_under_active_span(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        obs.enable(path)
        with obs.span("parent"):
            with obs.collect() as observations:
                with obs.span("worker-op"):
                    pass
                obs.get_registry().counter("worker.items").inc(5)
            obs.absorb(observations)
        snapshot = obs.shutdown()
        assert snapshot["counters"]["worker.items"] == 5

        trace = read_trace(path)
        roots = build_span_tree(trace.spans)
        assert [r.record.name for r in roots] == ["parent"]
        assert [c.record.name for c in roots[0].children] == ["worker-op"]

    def test_absorb_none_is_noop(self):
        obs.enable()
        obs.absorb(None)
        assert obs.shutdown() == {
            "counters": {}, "gauges": {}, "max_gauges": {}, "histograms": {}
        }

    def test_collect_restores_outer_runtime(self):
        obs.enable()
        obs.get_registry().counter("outer").inc()
        with obs.collect():
            obs.get_registry().counter("inner").inc()
        snapshot = obs.shutdown()
        assert snapshot["counters"] == {"outer": 1}
