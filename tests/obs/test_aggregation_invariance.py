"""Merged observability state must not depend on the worker count.

The pool captures each chunk's spans/metrics via ``collect()`` on both the
serial and the process-pool path and absorbs them in chunk-index order, so
float sums associate identically for any ``workers`` value — the merged
snapshot is bit-identical, not just approximately equal.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.ledger import PrivacyLedger
from repro.core.params import GeoIndBudget
from repro.edge.obfuscation import ObfuscationModule
from repro.geo.point import Point
from repro.parallel import parallel_map


def _metered_chunk(indices, rng):
    registry = obs.get_registry()
    registry.counter("test.items").inc(len(indices))
    hist = registry.histogram("test.values", (0.25, 0.5, 0.75))
    out = []
    for _ in indices:
        value = float(rng.uniform())
        hist.observe(value)
        registry.gauge("test.total").add(value)
        out.append(value)
    return out


def _run(workers):
    obs.enable()
    results = parallel_map(
        _metered_chunk, range(40), workers=workers, seed=123, chunk_size=5
    )
    return results, obs.shutdown()


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_snapshot_bit_identical_to_serial(self, workers):
        serial_results, serial_snapshot = _run(1)
        pooled_results, pooled_snapshot = _run(workers)
        assert pooled_results == serial_results
        # parallel.chunk_seconds is the pool's own wall-clock histogram and
        # process.peak_rss_bytes the pool's memory high-water mark — both
        # genuinely nondeterministic, so drop them; every metric the chunk
        # function emitted must merge bit-identically (dict equality
        # compares the float sums exactly, thanks to chunk-index-order
        # absorption).
        for snap in (serial_snapshot, pooled_snapshot):
            snap["histograms"].pop("parallel.chunk_seconds")
            snap["max_gauges"].pop("process.peak_rss_bytes")
        assert pooled_snapshot == serial_snapshot
        assert serial_snapshot["counters"]["test.items"] == 40
        assert serial_snapshot["histograms"]["test.values"]["count"] == 40

    def test_pool_counters_present(self):
        _, snapshot = _run(2)
        assert snapshot["counters"]["parallel.items"] == 40
        assert snapshot["counters"]["parallel.chunks"] == 8


class TestBudgetGauges:
    def test_gauges_track_ledger_sums_exactly(self):
        obs.enable()
        ledger = PrivacyLedger()
        for epsilon in (0.5, 1.0, 1.5):
            ledger.spend(GeoIndBudget(r=500.0, epsilon=epsilon, delta=0.01, n=10))
        snapshot = obs.shutdown()
        assert snapshot["gauges"]["privacy.epsilon_spent"] == ledger.total_epsilon
        assert snapshot["gauges"]["privacy.delta_spent"] == ledger.total_delta
        assert snapshot["counters"]["privacy.ledger_spends"] == ledger.spends

    def test_edge_pinning_feeds_ledger_gauges(self):
        """An edge run's spend gauge equals its ledger total, skips counted."""
        budget = GeoIndBudget(r=500.0, epsilon=1.0, delta=0.01, n=4)
        from repro.core.gaussian import NFoldGaussianMechanism

        obs.enable()
        ledger = PrivacyLedger(max_epsilon=2.5)
        module = ObfuscationModule(
            NFoldGaussianMechanism(budget), ledger=ledger
        )
        tops = [Point(x * 1_000.0, 0.0) for x in range(4)]
        module.ensure_obfuscated(tops)
        snapshot = obs.shutdown()
        # The cap admits two 1.0-epsilon pins; the other two are skipped.
        assert module.obfuscation_count == 2
        assert module.skipped_by_ledger == 2
        assert snapshot["gauges"]["privacy.epsilon_spent"] == ledger.total_epsilon
        assert snapshot["counters"]["edge.obfuscation.pins"] == 2
        assert snapshot["counters"]["edge.obfuscation.ledger_skips"] == 2
        assert snapshot["histograms"]["edge.obfuscation.pin_seconds"]["count"] == 2

    def test_ledger_untouched_when_disabled(self):
        ledger = PrivacyLedger()
        ledger.spend(GeoIndBudget(r=500.0, epsilon=1.0, delta=0.01, n=10))
        assert not obs.enabled()
        assert obs.get_registry().is_empty()


class TestDisabledOverheadPath:
    def test_parallel_map_meters_nothing_when_disabled(self):
        results = parallel_map(
            _metered_chunk, range(20), workers=1, seed=7, chunk_size=5
        )
        assert len(results) == 20
        # The pool's own metering is guarded by obs.enabled(); only the
        # unguarded writes of the test chunk function land in the registry.
        snapshot = obs.get_registry().snapshot()
        assert "parallel.chunks" not in snapshot["counters"]
        assert "parallel.chunk_seconds" not in snapshot["histograms"]

    def test_fig9_smoke_traced_rows_match_untraced(self, tmp_path):
        """Tracing must observe, never perturb: rows are bit-identical."""
        from repro.experiments import fig9_efficacy
        from repro.experiments.config import SMALL

        plain = fig9_efficacy.run(SMALL, ns=(1, 2), workers=1)
        obs.enable(str(tmp_path / "fig9.jsonl"))
        traced = fig9_efficacy.run(SMALL, ns=(1, 2), workers=1)
        snapshot = obs.shutdown()
        assert traced.rows == plain.rows
        assert snapshot["counters"]["parallel.chunks"] == 2
