"""Unit tests for the process-local metrics registry and its merge law."""

import pytest

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    merge_snapshots,
)


class TestPrimitives:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        counter.inc()
        counter.inc(4)
        assert registry.snapshot()["counters"]["requests"] == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("epsilon")
        gauge.set(1.5)
        gauge.add(0.5)
        assert registry.snapshot()["gauges"]["epsilon"] == 2.0

    def test_histogram_buckets_and_stats(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency", (1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            hist.observe(v)
        snap = registry.snapshot()["histograms"]["latency"]
        assert snap["bounds"] == [1.0, 10.0]
        assert snap["counts"] == [1, 1, 1]
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(55.5)
        assert hist.mean() == pytest.approx(55.5 / 3)

    def test_histogram_bound_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", (1.0, 3.0))

    def test_same_instance_on_reuse(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h", DEFAULT_TIME_BUCKETS) is registry.histogram(
            "h", DEFAULT_TIME_BUCKETS
        )


class TestMerge:
    def _registry(self, scale):
        registry = MetricsRegistry()
        registry.counter("items").inc(10 * scale)
        registry.gauge("spend").add(0.25 * scale)
        hist = registry.histogram("seconds", (0.1, 1.0))
        hist.observe(0.05 * scale)
        hist.observe(0.5)
        return registry

    def test_merge_is_additive(self):
        parent = self._registry(1)
        parent.merge(self._registry(2).snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["items"] == 30
        assert snap["gauges"]["spend"] == pytest.approx(0.75)
        assert snap["histograms"]["seconds"]["count"] == 4

    def test_merge_snapshots_equals_sequential_merge(self):
        parts = [self._registry(k).snapshot() for k in (1, 2, 3)]
        combined = merge_snapshots(parts)
        sequential = MetricsRegistry()
        for part in parts:
            sequential.merge(part)
        assert combined == sequential.snapshot()

    def test_merge_rejects_bound_mismatch(self):
        parent = MetricsRegistry()
        parent.histogram("h", (1.0,)).observe(0.5)
        other = MetricsRegistry()
        other.histogram("h", (2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            parent.merge(other.snapshot())

    def test_snapshot_of_empty_registry(self):
        registry = MetricsRegistry()
        assert registry.is_empty()
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_clear_forgets_everything(self):
        registry = self._registry(1)
        registry.clear()
        assert registry.is_empty()
