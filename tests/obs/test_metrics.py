"""Unit tests for the process-local metrics registry and its merge law."""

import pytest

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    merge_snapshots,
)


class TestPrimitives:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        counter.inc()
        counter.inc(4)
        assert registry.snapshot()["counters"]["requests"] == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("epsilon")
        gauge.set(1.5)
        gauge.add(0.5)
        assert registry.snapshot()["gauges"]["epsilon"] == 2.0

    def test_histogram_buckets_and_stats(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency", (1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            hist.observe(v)
        snap = registry.snapshot()["histograms"]["latency"]
        assert snap["bounds"] == [1.0, 10.0]
        assert snap["counts"] == [1, 1, 1]
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(55.5)
        assert hist.mean() == pytest.approx(55.5 / 3)

    def test_histogram_bound_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", (1.0, 3.0))

    def test_same_instance_on_reuse(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h", DEFAULT_TIME_BUCKETS) is registry.histogram(
            "h", DEFAULT_TIME_BUCKETS
        )


class TestMerge:
    def _registry(self, scale):
        registry = MetricsRegistry()
        registry.counter("items").inc(10 * scale)
        registry.gauge("spend").add(0.25 * scale)
        hist = registry.histogram("seconds", (0.1, 1.0))
        hist.observe(0.05 * scale)
        hist.observe(0.5)
        return registry

    def test_merge_is_additive(self):
        parent = self._registry(1)
        parent.merge(self._registry(2).snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["items"] == 30
        assert snap["gauges"]["spend"] == pytest.approx(0.75)
        assert snap["histograms"]["seconds"]["count"] == 4

    def test_merge_snapshots_equals_sequential_merge(self):
        parts = [self._registry(k).snapshot() for k in (1, 2, 3)]
        combined = merge_snapshots(parts)
        sequential = MetricsRegistry()
        for part in parts:
            sequential.merge(part)
        assert combined == sequential.snapshot()

    def test_merge_rejects_bound_mismatch(self):
        parent = MetricsRegistry()
        parent.histogram("h", (1.0,)).observe(0.5)
        other = MetricsRegistry()
        other.histogram("h", (2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            parent.merge(other.snapshot())

    def test_snapshot_of_empty_registry(self):
        registry = MetricsRegistry()
        assert registry.is_empty()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "max_gauges": {}, "histograms": {}
        }

    def test_clear_forgets_everything(self):
        registry = self._registry(1)
        registry.clear()
        assert registry.is_empty()


class TestMaxGauge:
    def test_observe_keeps_max(self):
        registry = MetricsRegistry()
        gauge = registry.max_gauge("process.peak_rss_bytes")
        gauge.observe(100.0)
        gauge.observe(40.0)
        gauge.observe(250.0)
        assert registry.snapshot()["max_gauges"]["process.peak_rss_bytes"] == 250.0

    def test_merge_takes_max_not_sum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.max_gauge("peak").observe(300.0)
        b.max_gauge("peak").observe(120.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["max_gauges"]["peak"] == 300.0

    def test_merge_tolerates_legacy_snapshots(self):
        """Snapshots recorded before max_gauges existed still merge."""
        registry = MetricsRegistry()
        registry.max_gauge("peak").observe(7.0)
        legacy = {"counters": {}, "gauges": {}, "histograms": {}}
        merged = merge_snapshots([legacy, registry.snapshot()])
        assert merged["max_gauges"]["peak"] == 7.0

    def test_clear_forgets_max_gauges(self):
        registry = MetricsRegistry()
        registry.max_gauge("peak").observe(1.0)
        assert not registry.is_empty()
        registry.clear()
        assert registry.is_empty()


class TestPeakRss:
    def test_peak_rss_is_positive_bytes(self):
        from repro.obs.rss import peak_rss_bytes

        value = peak_rss_bytes()
        # A running interpreter holds well over a megabyte.
        assert value > 1 << 20
        assert peak_rss_bytes(include_children=True) >= value

    def test_record_peak_rss_lands_in_registry(self):
        from repro import obs
        from repro.obs.rss import PEAK_RSS_METRIC, record_peak_rss

        obs.enable()
        recorded = record_peak_rss()
        snapshot = obs.shutdown()
        assert snapshot["max_gauges"][PEAK_RSS_METRIC] == recorded > 0

    def test_record_is_noop_when_disabled(self):
        from repro import obs
        from repro.obs.rss import record_peak_rss

        assert not obs.enabled()
        assert record_peak_rss() > 0
        assert obs.get_registry().is_empty()
