"""The unified CLI option set, ``repro obs``, and the trace renderers."""

import pytest

from repro.cli import build_parser, main
from repro.obs.metrics import MetricsRegistry
from repro.obs.render import render_prometheus


class TestSharedOptionSet:
    @pytest.mark.parametrize(
        "argv",
        [
            ["experiments", "table1"],
            ["simulate"],
            ["attack"],
            ["verify"],
        ],
    )
    def test_every_work_subcommand_accepts_common_flags(self, argv):
        args = build_parser().parse_args(
            argv + ["--workers", "2", "--cache", "--seed", "3", "--trace", "t.jsonl"]
        )
        assert args.workers == 2
        assert args.cache is True
        assert args.seed == 3
        assert args.trace == "t.jsonl"

    def test_no_cache_spelling_kept(self):
        args = build_parser().parse_args(["experiments", "table1", "--no-cache"])
        assert args.cache is False

    def test_seed_defaults_to_none_for_handler_fallbacks(self):
        for argv in (["simulate"], ["attack"], ["verify"]):
            assert build_parser().parse_args(argv).seed is None


class TestObsSubcommand:
    def _write_trace(self, tmp_path):
        from repro import obs

        path = str(tmp_path / "trace.jsonl")
        obs.enable(path)
        with obs.span("edge.run", devices=2):
            obs.get_registry().counter("edge.requests").inc(10)
        obs.shutdown()
        return path

    def test_summary_renders_tree_and_metrics(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        assert main(["obs", path]) == 0
        out = capsys.readouterr().out
        assert "edge.run" in out
        assert "devices=2" in out
        assert "edge.requests = 10" in out

    def test_prometheus_format(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        assert main(["obs", path, "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE edge_requests_total counter" in out
        assert "edge_requests_total 10" in out

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["obs", str(tmp_path / "absent.jsonl")]) == 1
        assert "cannot read trace" in capsys.readouterr().err

    def test_corrupt_file_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"trace"\n')
        assert main(["obs", str(path)]) == 1
        assert "cannot read trace" in capsys.readouterr().err


class TestTracedCommands:
    def test_simulate_writes_trace(self, tmp_path, capsys):
        path = tmp_path / "sim.jsonl"
        code = main(
            ["simulate", "--users", "3", "--campaigns", "20", "--trace", str(path)]
        )
        assert code == 0
        from repro.obs.render import read_trace

        trace = read_trace(str(path))
        assert any(s.name == "edge.run" for s in trace.spans)
        assert trace.metrics["counters"]["edge.requests"] > 0

    def test_experiments_forwards_seed_and_trace(self, tmp_path, capsys):
        path = tmp_path / "fig9.jsonl"
        code = main(
            ["experiments", "fig9", "--seed", "99", "--trace", str(path)]
        )
        assert code == 0
        from repro.obs.render import read_trace

        trace = read_trace(str(path))
        roots = [s for s in trace.spans if s.name == "experiment"]
        assert roots and roots[0].attrs["id"] == "fig9"


class TestPrometheusRenderer:
    def test_histogram_exposition_is_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("stage.seconds", (0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            hist.observe(v)
        text = render_prometheus(registry.snapshot())
        assert 'stage_seconds_bucket{le="0.1"} 1' in text
        assert 'stage_seconds_bucket{le="1.0"} 2' in text
        assert 'stage_seconds_bucket{le="+Inf"} 3' in text
        assert "stage_seconds_count 3" in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus(None) == ""
        assert render_prometheus(MetricsRegistry().snapshot()) == ""
