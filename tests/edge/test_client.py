"""Unit tests for the mobile client."""

from repro.ads.network import AdNetwork
from repro.edge.client import MobileClient
from repro.edge.device import EdgeConfig, EdgeDevice
from repro.geo.point import Point
from repro.profiles.checkin import SECONDS_PER_DAY, CheckIn


def make_client():
    device = EdgeDevice("e", AdNetwork(), EdgeConfig(seed=1))
    return MobileClient("u", device)


class TestMobileClient:
    def test_request_ad_updates_stats(self):
        client = make_client()
        client.request_ad(CheckIn(0.0, Point(0, 0)))
        assert client.stats.requests == 1
        assert client.stats.nomadic_path_requests == 1

    def test_replay_sorts_trace(self):
        client = make_client()
        trace = [CheckIn(5.0, Point(0, 0)), CheckIn(1.0, Point(0, 0))]
        results = client.replay(trace)
        assert len(results) == 2
        # The edge would raise on out-of-order check-ins, so the replay
        # succeeding proves the trace was sorted first.
        assert client.stats.requests == 2

    def test_replay_finalizes_profile(self):
        client = make_client()
        trace = [CheckIn(float(i), Point(0, 0)) for i in range(25)]
        client.replay(trace)
        state = client.edge.state_for("u")
        assert state.management.top_locations  # flush happened

    def test_path_mix_recorded(self):
        client = make_client()
        day = SECONDS_PER_DAY
        trace = [CheckIn(i * day, Point(0, 0)) for i in range(120)]
        client.replay(trace)
        assert (
            client.stats.top_path_requests + client.stats.nomadic_path_requests
            == client.stats.requests
        )
        assert client.stats.top_path_requests > 0
