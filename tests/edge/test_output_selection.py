"""Unit tests for the output selection module."""

import numpy as np
import pytest

from repro.core.posterior import UniformSelector
from repro.edge.output_selection import OutputSelectionModule
from repro.geo.point import Point


class TestOutputSelectionModule:
    def test_select_returns_candidate_and_counts(self, rng):
        module = OutputSelectionModule(UniformSelector(rng=rng))
        cands = [Point(0, 0), Point(1, 1)]
        out = module.select(cands)
        assert out in cands
        assert module.selection_count == 1

    def test_posterior_factory(self, rng):
        module = OutputSelectionModule.posterior(100.0, rng=rng)
        cands = [Point(0, 0), Point(500, 0)]
        assert module.select(cands) in cands

    def test_posterior_prefers_near_mean(self, rng):
        module = OutputSelectionModule.posterior(50.0, rng=rng)
        # Mean is (100, 0); first candidate is right on it.
        cands = [Point(100, 0), Point(400, 0), Point(-200, 0)]
        picks = [module.select(cands) for _ in range(500)]
        assert picks.count(Point(100, 0)) > 300

    def test_select_batch_counts_and_membership(self, rng):
        module = OutputSelectionModule(UniformSelector(rng=rng))
        cands = [Point(i, 0) for i in range(10)]
        batch = module.select_batch(cands, 100)
        assert len(batch) == 100
        assert all(p in cands for p in batch)
        assert module.selection_count == 100

    def test_select_batch_rejects_bad_size(self, rng):
        module = OutputSelectionModule(UniformSelector(rng=rng))
        with pytest.raises(ValueError):
            module.select_batch([Point(0, 0)], 0)
