"""Unit tests for the edge device serve path."""

import pytest

from repro.ads.campaign import Advertiser, Campaign
from repro.ads.network import AdNetwork
from repro.core.params import GeoIndBudget
from repro.edge.device import EdgeConfig, EdgeDevice
from repro.geo.point import Point
from repro.profiles.checkin import SECONDS_PER_DAY


DAY = SECONDS_PER_DAY
HOME = Point(0.0, 0.0)


def make_device(window_days=30.0, **config_kwargs):
    network = AdNetwork()
    config = EdgeConfig(
        budget=GeoIndBudget(500.0, 1.0, 0.01, 10),
        window_days=window_days,
        seed=3,
        **config_kwargs,
    )
    return EdgeDevice("edge-0", network, config), network


class TestReportPath:
    def test_nomadic_before_first_window(self):
        device, _ = make_device()
        reported, path = device.choose_report_location("u", HOME, 0.0)
        assert path == "nomadic"
        assert reported != HOME

    def test_top_path_after_window_closes(self):
        device, _ = make_device(window_days=10.0)
        for i in range(30):
            device.choose_report_location("u", HOME, i * DAY / 3)
        # Cross the window boundary.
        _, path = device.choose_report_location("u", HOME, 11 * DAY)
        assert path == "top"

    def test_top_reports_come_from_pinned_set(self):
        device, _ = make_device(window_days=10.0)
        for i in range(30):
            device.choose_report_location("u", HOME, i * DAY / 3)
        reports = set()
        for k in range(100):
            reported, path = device.choose_report_location(
                "u", HOME, 11 * DAY + k
            )
            assert path == "top"
            reports.add((reported.x, reported.y))
        assert len(reports) <= 10

    def test_per_user_state_isolation(self):
        device, _ = make_device(window_days=10.0)
        device.choose_report_location("alice", HOME, 0.0)
        device.choose_report_location("bob", Point(9_000, 0), 0.0)
        assert device.user_count == 2
        assert device.state_for("alice") is not device.state_for("bob")


class TestServePath:
    def test_handle_logs_obfuscated_location_only(self):
        """The network log must never contain the true location."""
        device, network = make_device()
        result = device.handle_ad_request("u", HOME, 0.0)
        rec = network.bid_log.records_for("u")[0]
        assert rec.reported_location == result.reported_location
        assert rec.reported_location.distance_to(HOME) > 1.0

    def test_delivered_ads_are_aoi_relevant(self):
        device, network = make_device()
        near = Campaign.create(
            Advertiser("a1"), Point(1_000, 0), radius_m=25_000.0, bid_price=2.0
        )
        far = Campaign.create(
            Advertiser("a2"), Point(40_000, 0), radius_m=25_000.0, bid_price=3.0
        )
        network.register_campaigns([near, far])
        result = device.handle_ad_request("u", HOME, 0.0)
        for ad in result.delivered_ads:
            assert ad.business_location.distance_to(HOME) <= device.config.targeting_radius

    def test_requests_counted(self):
        device, _ = make_device()
        device.handle_ad_request("u", HOME, 0.0)
        device.handle_ad_request("u", HOME, 1.0)
        assert device.requests_served == 2

    def test_finalize_user_pins_tops(self):
        device, _ = make_device(window_days=10_000.0)
        for i in range(20):
            device.handle_ad_request("u", HOME, float(i))
        device.finalize_user("u")
        state = device.state_for("u")
        assert state.obfuscation.obfuscation_count >= 1

    def test_finalize_unknown_user_noop(self):
        device, _ = make_device()
        device.finalize_user("ghost")  # must not raise
