"""Unit tests for the full system orchestration."""

import numpy as np
import pytest

from repro.datagen.population import PopulationConfig, generate_population
from repro.datagen.shanghai import shanghai_planar_bbox
from repro.edge.system import (
    EdgePrivLocAdSystem,
    SystemConfig,
    seed_campaigns,
)


class TestSeedCampaigns:
    def test_count_and_region(self, rng):
        region = shanghai_planar_bbox()
        campaigns = seed_campaigns(region, 20, 5_000.0, rng)
        assert len(campaigns) == 20
        for c in campaigns:
            assert region.contains(c.business_location)
            assert c.radius_m == 5_000.0

    def test_zero_count(self, rng):
        assert seed_campaigns(shanghai_planar_bbox(), 0, 5_000.0, rng) == []


class TestSystemRun:
    @pytest.fixture(scope="class")
    def run_result(self):
        users = generate_population(PopulationConfig(n_users=6, seed=21))
        system = EdgePrivLocAdSystem(SystemConfig(n_edge_devices=2))
        rng = np.random.default_rng(0)
        system.register_campaigns(
            seed_campaigns(shanghai_planar_bbox(), 100, 5_000.0, rng)
        )
        report = system.run(users)
        return users, system, report

    def test_all_requests_served(self, run_result):
        users, system, report = run_result
        total = sum(u.n_checkins for u in users)
        assert report.requests == total
        assert len(system.network.bid_log) == total

    def test_every_user_in_bid_log(self, run_result):
        users, system, _ = run_result
        devices = set(system.network.bid_log.devices())
        assert devices == {u.user_id for u in users}

    def test_clients_pinned_to_one_edge(self, run_result):
        users, system, _ = run_result
        for u in users:
            client = system.client_for(u.user_id)
            assert client is system.client_for(u.user_id)

    def test_path_accounting_consistent(self, run_result):
        _, _, report = run_result
        assert (
            report.top_path_requests + report.nomadic_path_requests
            == report.requests
        )
        assert 0.0 <= report.top_path_share <= 1.0

    def test_reported_locations_never_true(self, run_result):
        """No logged location may exactly equal a raw check-in location."""
        users, system, _ = run_result
        for u in users[:2]:
            true_points = {(c.x, c.y) for c in u.trace}
            for rec in system.network.bid_log.records_for(u.user_id)[:200]:
                assert (
                    rec.reported_location.x,
                    rec.reported_location.y,
                ) not in true_points

    def test_relevance_ratio_bounded(self, run_result):
        _, _, report = run_result
        assert 0.0 <= report.relevance_ratio <= 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(n_edge_devices=0)


class TestAdaptiveSystem:
    def test_adaptive_flag_propagates_to_edges(self):
        from repro.edge.device import EdgeConfig

        system = EdgePrivLocAdSystem(
            SystemConfig(edge=EdgeConfig(adaptive=True), n_edge_devices=2)
        )
        assert all(edge.config.adaptive for edge in system.edges)

    def test_adaptive_run_completes(self):
        from repro.edge.device import EdgeConfig

        users = generate_population(PopulationConfig(n_users=3, seed=8))
        system = EdgePrivLocAdSystem(
            SystemConfig(edge=EdgeConfig(adaptive=True), n_edge_devices=2)
        )
        report = system.run(users)
        assert report.requests == sum(u.n_checkins for u in users)
