"""Unit tests for the simulation clock and the measurement-time seam."""

import pytest

from repro.edge.clock import (
    DEFAULT_VIRTUAL_TICK,
    SimulationClock,
    TimeSource,
    VirtualTimeSource,
    WallTimeSource,
)


class TestSimulationClock:
    def test_starts_at_given_time(self):
        assert SimulationClock(100.0).now == 100.0

    def test_advance_to(self):
        clock = SimulationClock()
        clock.advance_to(50.0)
        assert clock.now == 50.0

    def test_advance_by(self):
        clock = SimulationClock(10.0)
        clock.advance_by(5.0)
        assert clock.now == 15.0

    def test_no_backwards_travel(self):
        clock = SimulationClock(100.0)
        with pytest.raises(ValueError):
            clock.advance_to(50.0)
        with pytest.raises(ValueError):
            clock.advance_by(-1.0)

    def test_advance_to_same_time_ok(self):
        clock = SimulationClock(100.0)
        clock.advance_to(100.0)
        assert clock.now == 100.0


class TestTimeSources:
    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            TimeSource().monotonic()

    def test_wall_source_is_monotonic(self):
        source = WallTimeSource()
        readings = [source.monotonic() for _ in range(5)]
        assert readings == sorted(readings)

    def test_virtual_source_advances_one_tick_per_reading(self):
        source = VirtualTimeSource(tick=0.5)
        assert source.monotonic() == 0.5
        assert source.monotonic() == 1.0
        assert source.now == 1.0

    def test_virtual_durations_are_exact_at_any_offset(self):
        # The replay contract: the same k-reading measurement yields the
        # same bits no matter how far the source has already advanced.
        source = VirtualTimeSource()
        t0 = source.monotonic()
        early = source.monotonic() - t0
        for _ in range(1_000_003):
            source.monotonic()
        t0 = source.monotonic()
        late = source.monotonic() - t0
        assert early == late == DEFAULT_VIRTUAL_TICK

    def test_virtual_advance_adds_whole_ticks(self):
        source = VirtualTimeSource(tick=2.0)
        source.advance(3)
        assert source.now == 6.0
        with pytest.raises(ValueError):
            source.advance(-1)

    def test_negative_tick_rejected(self):
        with pytest.raises(ValueError):
            VirtualTimeSource(tick=-1.0)
