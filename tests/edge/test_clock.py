"""Unit tests for the simulation clock."""

import pytest

from repro.edge.clock import SimulationClock


class TestSimulationClock:
    def test_starts_at_given_time(self):
        assert SimulationClock(100.0).now == 100.0

    def test_advance_to(self):
        clock = SimulationClock()
        clock.advance_to(50.0)
        assert clock.now == 50.0

    def test_advance_by(self):
        clock = SimulationClock(10.0)
        clock.advance_by(5.0)
        assert clock.now == 15.0

    def test_no_backwards_travel(self):
        clock = SimulationClock(100.0)
        with pytest.raises(ValueError):
            clock.advance_to(50.0)
        with pytest.raises(ValueError):
            clock.advance_by(-1.0)

    def test_advance_to_same_time_ok(self):
        clock = SimulationClock(100.0)
        clock.advance_to(100.0)
        assert clock.now == 100.0
