"""Unit tests for the edge-side risk assessment."""

import math

import pytest

from repro.core.gaussian import NFoldGaussianMechanism
from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget
from repro.core.posterior import PosteriorSelector
from repro.datagen.casestudy import make_fig4_user
from repro.datagen.obfuscate import one_time_obfuscate, permanent_obfuscate
from repro.edge.risk import RiskAssessor, RiskLevel, self_attack_margin
from repro.geo.point import Point
from repro.profiles.profile import LocationProfile, ProfileEntry


def profile_of(freqs):
    return LocationProfile(
        [ProfileEntry(Point(i * 1_000.0, 0.0), f) for i, f in enumerate(freqs)]
    )


class TestRiskAssessor:
    def test_routine_heavy_user_is_high_risk(self):
        """Low entropy + many observations + dominant top-1: HIGH."""
        assessment = RiskAssessor().assess(profile_of([800, 150, 50]))
        assert assessment.level is RiskLevel.HIGH
        assert assessment.needs_permanent_obfuscation
        assert len(assessment.reasons) == 3

    def test_light_diffuse_user_is_low_risk(self):
        """High entropy, few observations, no dominant location: LOW."""
        assessment = RiskAssessor().assess(profile_of([3] * 20))
        assert assessment.level is RiskLevel.LOW
        assert not assessment.needs_permanent_obfuscation

    def test_single_signal_is_medium(self):
        """Many observations but diffuse and balanced: MEDIUM."""
        assessment = RiskAssessor(entropy_threshold=1.0).assess(
            profile_of([40] * 10)  # 400 observations, entropy ln(10)=2.3
        )
        assert assessment.level is RiskLevel.MEDIUM

    def test_empty_profile(self):
        assessment = RiskAssessor().assess(LocationProfile())
        assert assessment.level is RiskLevel.LOW
        assert assessment.observations == 0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            RiskAssessor(entropy_threshold=0.0)
        with pytest.raises(ValueError):
            RiskAssessor(observation_threshold=0)
        with pytest.raises(ValueError):
            RiskAssessor(top1_share_threshold=1.0)


class TestSelfAttackMargin:
    def test_one_time_deployment_has_tiny_margin(self):
        user = make_fig4_user()
        mech = PlanarLaplaceMechanism.from_level(
            math.log(2), 200.0, rng=default_rng(1)
        )
        reported = one_time_obfuscate(user.trace, mech)
        margin = self_attack_margin(reported, user.true_tops, mech)
        assert margin < 200.0  # the edge sees the user is exposed

    def test_permanent_deployment_has_wide_margin(self):
        user = make_fig4_user()
        budget = GeoIndBudget(500.0, 1.0, 0.01, 10)
        rng = default_rng(2)
        mech = NFoldGaussianMechanism(budget, rng=rng)
        selector = PosteriorSelector(mech.posterior_sigma, rng=rng)
        profile = LocationProfile.from_checkins(user.trace)
        tops = [e.location for e in profile.top(2)]
        reported = permanent_obfuscate(user.trace, tops, mech, selector)
        margin = self_attack_margin(reported, user.true_tops, mech)
        assert margin > 300.0

    def test_empty_stream_infinite_margin(self):
        mech = PlanarLaplaceMechanism.from_level(math.log(2), 200.0)
        assert self_attack_margin([], [Point(0, 0)], mech) == float("inf")

    def test_needs_true_tops(self):
        mech = PlanarLaplaceMechanism.from_level(math.log(2), 200.0)
        with pytest.raises(ValueError):
            self_attack_margin([], [], mech)
