"""Unit tests for the honest-but-curious provider."""

import numpy as np

from repro.ads.network import AdNetwork
from repro.attack.deobfuscation import DeobfuscationAttack
from repro.edge.provider import HonestButCuriousProvider
from repro.geo.point import Point


def seed_log(network, device_id, center, count, rng, scale=20.0):
    for i in range(count):
        x, y = center
        req = network.new_request(
            device_id,
            Point(x + rng.normal(0, scale), y + rng.normal(0, scale)),
            float(i),
        )
        network.handle(req)


class TestProvider:
    def test_attack_device_recovers_cluster_center(self, rng):
        provider = HonestButCuriousProvider(AdNetwork())
        seed_log(provider.network, "victim", (1_000.0, -2_000.0), 200, rng)
        attack = DeobfuscationAttack(theta=50.0, r_alpha=100.0)
        finding = provider.attack_device("victim", attack, top_n=1)
        assert finding.observations == 200
        assert len(finding.inferred) == 1
        guess = finding.inferred[0].location
        assert guess.distance_to(Point(1_000, -2_000)) < 20.0

    def test_attack_unknown_device(self):
        provider = HonestButCuriousProvider()
        attack = DeobfuscationAttack(theta=50.0, r_alpha=100.0)
        finding = provider.attack_device("nobody", attack)
        assert finding.observations == 0
        assert finding.inferred == ()

    def test_attack_all_covers_every_device(self, rng):
        provider = HonestButCuriousProvider()
        seed_log(provider.network, "a", (0.0, 0.0), 50, rng)
        seed_log(provider.network, "b", (5_000.0, 0.0), 50, rng)
        attack = DeobfuscationAttack(theta=50.0, r_alpha=100.0)
        findings = provider.attack_all(attack, top_n=1)
        assert set(findings) == {"a", "b"}

    def test_default_network_created(self):
        provider = HonestButCuriousProvider()
        assert provider.network is not None
