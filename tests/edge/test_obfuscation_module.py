"""Unit tests for the obfuscation table and module (permanence guarantee)."""

import pytest

from repro.core.gaussian import NFoldGaussianMechanism
from repro.core.mechanism import default_rng
from repro.edge.obfuscation import ObfuscationModule, ObfuscationTable
from repro.geo.point import Point


class TestObfuscationTable:
    def test_lookup_miss(self):
        assert ObfuscationTable().lookup(Point(0, 0)) is None

    def test_pin_and_lookup(self):
        table = ObfuscationTable()
        cands = [Point(1, 1), Point(2, 2)]
        table.pin(Point(0, 0), cands)
        assert table.lookup(Point(0, 0)) == cands

    def test_lookup_tolerates_centroid_drift(self):
        table = ObfuscationTable(match_radius=100.0)
        table.pin(Point(0, 0), [Point(1, 1)])
        assert table.lookup(Point(50, 0)) is not None
        assert table.lookup(Point(200, 0)) is None

    def test_lookup_prefers_nearest_entry(self):
        table = ObfuscationTable(match_radius=100.0)
        table.pin(Point(0, 0), [Point(10, 10)])
        table.pin(Point(150, 0), [Point(20, 20)])
        assert table.lookup(Point(140, 0)) == [Point(20, 20)]

    def test_double_pin_rejected(self):
        """Permanent entries must never be overwritten (privacy!)."""
        table = ObfuscationTable()
        table.pin(Point(0, 0), [Point(1, 1)])
        with pytest.raises(ValueError):
            table.pin(Point(10, 0), [Point(2, 2)])

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            ObfuscationTable().pin(Point(0, 0), [])

    def test_bad_match_radius(self):
        with pytest.raises(ValueError):
            ObfuscationTable(match_radius=0.0)


class TestObfuscationModule:
    def _module(self, paper_budget):
        mech = NFoldGaussianMechanism(paper_budget, rng=default_rng(0))
        return ObfuscationModule(mech, match_radius=100.0)

    def test_ensure_obfuscated_pins_new_tops(self, paper_budget):
        module = self._module(paper_budget)
        module.ensure_obfuscated([Point(0, 0), Point(10_000, 0)])
        assert module.obfuscation_count == 2
        assert len(module.table) == 2

    def test_permanence_no_budget_respent(self, paper_budget):
        """Re-presenting the same top location must not re-randomise."""
        module = self._module(paper_budget)
        module.ensure_obfuscated([Point(0, 0)])
        first = module.candidates_for(Point(0, 0))
        module.ensure_obfuscated([Point(0, 0)])
        module.ensure_obfuscated([Point(30, 0)])  # drifted centroid
        assert module.obfuscation_count == 1
        assert module.candidates_for(Point(0, 0)) == first

    def test_candidates_for_unknown_location(self, paper_budget):
        module = self._module(paper_budget)
        assert module.candidates_for(Point(0, 0)) is None

    def test_candidate_count_matches_mechanism(self, paper_budget):
        module = self._module(paper_budget)
        module.ensure_obfuscated([Point(0, 0)])
        assert len(module.candidates_for(Point(0, 0))) == 10
