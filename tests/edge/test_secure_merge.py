"""Unit tests for secure multi-edge profile merging."""

import numpy as np
import pytest

from repro.edge.secure_merge import (
    MODULUS,
    GridSpec,
    SecureProfileMerge,
    reconstruct_histogram,
    share_histogram,
)
from repro.geo.point import Point
from repro.profiles.checkin import CheckIn


GRID = GridSpec(origin_x=0.0, origin_y=0.0, cell_size=100.0, cells_x=10, cells_y=10)


def trace_at(x, y, count):
    return [CheckIn(float(i), Point(x, y)) for i in range(count)]


class TestGridSpec:
    def test_cell_roundtrip(self):
        cell = GRID.cell_of(Point(250.0, 730.0))
        center = GRID.center_of(cell)
        assert center == Point(250.0, 750.0)

    def test_out_of_range_clamped(self):
        assert GRID.cell_of(Point(-50.0, -50.0)) == 0
        assert GRID.cell_of(Point(10_000.0, 10_000.0)) == GRID.n_cells - 1

    def test_histogram_counts(self):
        h = GRID.histogram(trace_at(50, 50, 3) + trace_at(250, 50, 2))
        assert h.sum() == 5
        assert h[GRID.cell_of(Point(50, 50))] == 3

    def test_center_validation(self):
        with pytest.raises(ValueError):
            GRID.center_of(GRID.n_cells)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            GridSpec(0, 0, 0.0, 2, 2)
        with pytest.raises(ValueError):
            GridSpec(0, 0, 1.0, 0, 2)


class TestSecretSharing:
    def test_reconstruction_exact(self, rng):
        counts = rng.integers(0, 1_000, size=50).astype(np.int64)
        shares = share_histogram(counts, n_parties=3, rng=rng)
        assert len(shares) == 3
        assert (reconstruct_histogram(shares) == counts).all()

    def test_strict_subset_reveals_nothing(self, rng):
        """Any n-1 shares of a constant secret are (near) uniform mod p.

        We check the first share of many sharings of the same secret is
        spread over the modulus range, not clustered near the secret.
        """
        counts = np.array([7], dtype=np.int64)
        firsts = [
            int(share_histogram(counts, 2, rng)[0][0]) for _ in range(300)
        ]
        spread = (max(firsts) - min(firsts)) / MODULUS
        assert spread > 0.5  # covers most of the range
        # And no share equals the secret systematically.
        assert sum(1 for f in firsts if f == 7) <= 2

    def test_two_party_minimum(self, rng):
        with pytest.raises(ValueError):
            share_histogram(np.array([1], dtype=np.int64), 1, rng)

    def test_negative_counts_rejected(self, rng):
        with pytest.raises(ValueError):
            share_histogram(np.array([-1], dtype=np.int64), 2, rng)

    def test_empty_shares_rejected(self):
        with pytest.raises(ValueError):
            reconstruct_histogram([])


class TestSecureProfileMerge:
    def test_merge_equals_plain_union(self, rng):
        merger = SecureProfileMerge(GRID, n_aggregators=3, rng=rng)
        edge_a = trace_at(50, 50, 20) + trace_at(350, 350, 5)
        edge_b = trace_at(50, 50, 10) + trace_at(750, 150, 8)
        merger.contribute(edge_a)
        merger.contribute(edge_b)
        merged = merger.merge()
        plain = GRID.histogram(edge_a) + GRID.histogram(edge_b)
        assert (merged == plain).all()
        assert merger.contributions == 2

    def test_merged_profile_ordering(self, rng):
        merger = SecureProfileMerge(GRID, rng=rng)
        merger.contribute(trace_at(50, 50, 20))
        merger.contribute(trace_at(350, 350, 5))
        profile = merger.merged_profile()
        assert len(profile) == 2
        assert profile[0].frequency == 20
        assert profile[0].location == Point(50.0, 50.0)

    def test_aggregator_pools_do_not_reveal_counts(self, rng):
        """No single aggregator pool equals the plain histogram."""
        merger = SecureProfileMerge(GRID, n_aggregators=3, rng=rng)
        trace = trace_at(50, 50, 100)
        merger.contribute(trace)
        plain = GRID.histogram(trace)
        for pool in merger._pools:
            assert not (pool == plain).all()

    def test_needs_two_aggregators(self):
        with pytest.raises(ValueError):
            SecureProfileMerge(GRID, n_aggregators=1)
