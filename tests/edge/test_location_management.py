"""Unit tests for the location management module."""

import pytest

from repro.edge.location_management import LocationManagementModule
from repro.geo.point import Point
from repro.profiles.checkin import SECONDS_PER_DAY, CheckIn


DAY = SECONDS_PER_DAY


def ci(t, x=0.0, y=0.0):
    return CheckIn(t, Point(x, y))


class TestLocationManagementModule:
    def test_no_tops_before_first_window(self):
        m = LocationManagementModule(window_days=30.0)
        assert m.record(ci(0.0)) is None
        assert m.top_locations == []
        assert m.profile is None

    def test_tops_computed_on_rollover(self):
        m = LocationManagementModule(eta=0.8, window_days=30.0)
        for i in range(20):
            m.record(ci(i * DAY, 0.0, 0.0))
        tops = m.record(ci(31 * DAY, 0.0, 0.0))
        assert tops is not None
        assert len(tops) == 1
        assert tops[0].distance_to(Point(0, 0)) < 1.0
        assert m.windows_closed == 1

    def test_eta_selects_frequent_prefix(self):
        m = LocationManagementModule(eta=0.8, window_days=30.0)
        # 70% at home, 20% at work, 10% elsewhere.
        t = 0.0
        for _ in range(14):
            m.record(ci(t, 0.0, 0.0)); t += DAY / 10
        for _ in range(4):
            m.record(ci(t, 5_000.0, 0.0)); t += DAY / 10
        for _ in range(2):
            m.record(ci(t, 20_000.0, 0.0)); t += DAY / 10
        tops = m.record(ci(40 * DAY))
        # 14/20 = 0.7 < 0.8; adding work makes 0.9 >= 0.8: two tops.
        assert len(tops) == 2

    def test_flush_emits_partial_window(self):
        m = LocationManagementModule(window_days=30.0)
        m.record(ci(0.0))
        tops = m.flush()
        assert tops is not None
        assert m.top_locations == tops

    def test_is_top_location(self):
        m = LocationManagementModule(eta=0.8, window_days=30.0)
        for i in range(10):
            m.record(ci(float(i), 0.0, 0.0))
        m.flush()
        assert m.is_top_location(Point(20, 0), match_radius=100.0)
        assert not m.is_top_location(Point(500, 0), match_radius=100.0)

    def test_rejects_bad_eta(self):
        with pytest.raises(ValueError):
            LocationManagementModule(eta=0.0)


class TestTopHistory:
    def test_history_grows_per_window(self):
        m = LocationManagementModule(window_days=10.0)
        for i in range(10):
            m.record(ci(i * DAY, 0.0, 0.0))
        m.record(ci(11 * DAY))  # closes the first window
        m.flush()  # closes the trailing partial window
        assert len(m.top_history) == m.windows_closed == 2

    def test_history_entries_are_snapshots(self):
        m = LocationManagementModule(window_days=10.0)
        for i in range(10):
            m.record(ci(float(i), 0.0, 0.0))
        m.flush()
        snapshot = m.top_history[0]
        assert snapshot == m.top_locations
        assert snapshot is not m.top_locations  # defensive copies
