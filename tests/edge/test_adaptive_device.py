"""Unit tests for the edge device's adaptive risk policy."""

import numpy as np
import pytest

from repro.ads.network import AdNetwork
from repro.core.params import GeoIndBudget
from repro.edge.device import EdgeConfig, EdgeDevice
from repro.geo.point import Point
from repro.profiles.checkin import SECONDS_PER_DAY


DAY = SECONDS_PER_DAY
HOME = Point(0.0, 0.0)


def make_device(adaptive, window_days=10.0):
    return EdgeDevice(
        "edge-a",
        AdNetwork(),
        EdgeConfig(
            budget=GeoIndBudget(500.0, 1.0, 0.01, 10),
            window_days=window_days,
            adaptive=adaptive,
            seed=5,
        ),
    )


def routine_stream(device, user_id, days=12, per_day=30):
    """A heavily routine user: hundreds of check-ins at one location."""
    for day in range(days):
        for k in range(per_day):
            device.choose_report_location(
                user_id, HOME, day * DAY + k * (DAY / per_day)
            )


def diffuse_stream(device, user_id, rng, days=12, per_day=2):
    """A light, diffuse user: few check-ins, all over the city."""
    t = 0.0
    for day in range(days):
        for k in range(per_day):
            p = Point(*rng.uniform(-20_000, 20_000, 2))
            device.choose_report_location(user_id, p, t)
            t += DAY / per_day


class TestAdaptiveDevice:
    def test_routine_user_gets_pinned(self):
        device = make_device(adaptive=True)
        routine_stream(device, "commuter")
        state = device.state_for("commuter")
        assert state.protect
        assert state.obfuscation.obfuscation_count >= 1

    def test_diffuse_user_stays_unpinned(self):
        device = make_device(adaptive=True)
        rng = np.random.default_rng(3)
        diffuse_stream(device, "wanderer", rng)
        device.finalize_user("wanderer")
        state = device.state_for("wanderer")
        assert not state.protect
        assert state.obfuscation.obfuscation_count == 0

    def test_non_adaptive_pins_everyone(self):
        device = make_device(adaptive=False)
        rng = np.random.default_rng(3)
        diffuse_stream(device, "wanderer", rng)
        device.finalize_user("wanderer")
        state = device.state_for("wanderer")
        assert state.protect
        assert state.obfuscation.obfuscation_count >= 1

    def test_adaptive_routine_user_served_from_pins(self):
        device = make_device(adaptive=True)
        routine_stream(device, "commuter")
        reported, path = device.choose_report_location(
            "commuter", HOME, 100 * DAY
        )
        assert path == "top"
