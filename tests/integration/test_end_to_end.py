"""Integration test: the full Edge-PrivLocAd system against its provider."""

import numpy as np
import pytest

from repro.attack.deobfuscation import DeobfuscationAttack
from repro.attack.success import evaluate_user, success_rate
from repro.core.gaussian import NFoldGaussianMechanism
from repro.core.params import GeoIndBudget
from repro.datagen.shanghai import shanghai_planar_bbox
from repro.edge.system import EdgePrivLocAdSystem, SystemConfig, seed_campaigns


@pytest.fixture(scope="module")
def deployed(tiny_population):
    system = EdgePrivLocAdSystem(SystemConfig(n_edge_devices=3))
    rng = np.random.default_rng(7)
    system.register_campaigns(
        seed_campaigns(shanghai_planar_bbox(), 200, 5_000.0, rng)
    )
    report = system.run(tiny_population)
    return tiny_population, system, report


class TestServing:
    def test_every_checkin_becomes_a_request(self, deployed):
        users, _, report = deployed
        assert report.requests == sum(u.n_checkins for u in users)

    def test_most_traffic_served_from_pinned_tops(self, deployed):
        """Routine users should hit the top path for most requests."""
        _, _, report = deployed
        assert report.top_path_share > 0.5

    def test_some_ads_delivered(self, deployed):
        _, _, report = deployed
        assert report.ads_delivered > 0

    def test_edge_filter_blocks_irrelevant_ads(self, deployed):
        _, _, report = deployed
        assert report.ads_delivered <= report.ads_received


class TestProviderSideAttack:
    def test_longitudinal_attack_on_own_log_fails(self, deployed):
        users, system, _ = deployed
        budget = GeoIndBudget(500.0, 1.0, 0.01, 10)
        attack = DeobfuscationAttack.against(NFoldGaussianMechanism(budget))
        findings = system.provider.attack_all(attack, top_n=1)
        outcomes = []
        for u in users:
            inferred = [i.location for i in findings[u.user_id].inferred]
            outcomes.append(evaluate_user(inferred, u.true_tops[:1]))
        assert success_rate(outcomes, 1, 200.0) <= 0.2

    def test_provider_observed_every_user(self, deployed):
        users, system, _ = deployed
        assert set(system.network.bid_log.devices()) == {u.user_id for u in users}

    def test_log_is_distributionally_far_from_true_tops(self, deployed):
        """The provider's log must not concentrate near a true top location.

        Nomadic reports carry 1-fold Gaussian noise (sigma ~1.6 km) and top
        reports come from pinned candidates (sigma ~5 km).  Individual
        draws can land close by chance, so the assertion is
        distributional: the median logged distance to the true top must be
        on the noise scale, and no report may be exactly at the truth.
        """
        users, system, _ = deployed
        for u in users[:4]:
            obs = system.network.bid_log.observations_for(u.user_id)
            for top in u.true_tops[:1]:
                d = np.hypot(obs[:, 0] - top.x, obs[:, 1] - top.y)
                assert np.median(d) > 500.0
                assert d.min() > 0.0
