"""Integration tests of the privacy guarantees themselves.

Verifies Theorem 2 across the paper's whole parameter grid, both
analytically (tight Gaussian trade-off) and empirically (sampled
hockey-stick divergence on the actual mechanism implementation), and
checks that post-processing steps (output selection) cannot leak.
"""

import math

import numpy as np
import pytest

from repro.core.baselines import PlainCompositionMechanism
from repro.core.gaussian import NFoldGaussianMechanism
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget
from repro.core.posterior import PosteriorSelector
from repro.core.verification import (
    empirical_privacy_check,
    gaussian_delta,
    verify_gaussian_geo_ind,
)
from repro.geo.point import Point


class TestTheorem2AcrossPaperGrid:
    @pytest.mark.parametrize("epsilon", [1.0, 1.5])
    @pytest.mark.parametrize("r", [500.0, 600.0, 700.0, 800.0])
    @pytest.mark.parametrize("n", [1, 5, 10])
    def test_analytic(self, r, epsilon, n):
        budget = GeoIndBudget(r, epsilon, 0.01, n)
        mech = NFoldGaussianMechanism(budget)
        assert verify_gaussian_geo_ind(r, epsilon, 0.01, n, mech.sigma)

    def test_empirical_on_implementation(self):
        budget = GeoIndBudget(500.0, 1.0, 0.01, 10)
        mech = NFoldGaussianMechanism(budget)
        report = empirical_privacy_check(
            500.0, 1.0, 0.01, 10, mech.sigma, samples=80_000, rng=default_rng(0)
        )
        assert report.satisfied

    def test_composition_baseline_also_private(self):
        """The baseline is wasteful, not broken: it must still satisfy the budget."""
        budget = GeoIndBudget(500.0, 1.0, 0.01, 10)
        mech = PlainCompositionMechanism(budget)
        # Each output satisfies (r, eps/n, delta/n): check the per-output bound.
        assert verify_gaussian_geo_ind(500.0, 0.1, 0.001, 1, mech.sigma)


class TestPostProcessingSafety:
    def test_selection_output_is_subset_of_release(self, paper_budget):
        """Output selection can only ever re-emit already-released points."""
        mech = NFoldGaussianMechanism(paper_budget, rng=default_rng(1))
        selector = PosteriorSelector(mech.posterior_sigma, rng=default_rng(2))
        candidates = mech.obfuscate(Point(0, 0))
        for _ in range(50):
            assert selector.select(candidates) in candidates

    def test_selection_does_not_depend_on_true_location(self, paper_budget):
        """The selector sees only candidates — identical candidate sets must
        yield identical selection distributions regardless of the (hidden)
        true location."""
        mech = NFoldGaussianMechanism(paper_budget, rng=default_rng(3))
        candidates = mech.obfuscate(Point(0, 0))
        sel = PosteriorSelector(mech.posterior_sigma)
        p1 = sel.probabilities(candidates)
        # Shift the frame: same candidates expressed around another "truth".
        p2 = sel.probabilities(list(candidates))
        assert np.allclose(p1, p2)


class TestLongitudinalBudgetInvariance:
    def test_mean_of_pinned_candidates_is_the_only_leak(self, paper_budget):
        """Observing the pinned set a million times reveals nothing beyond
        the set itself: the attacker's best statistic is the candidate
        mean, whose distance to the truth is controlled by sigma/sqrt(n)."""
        rng = default_rng(4)
        mech = NFoldGaussianMechanism(paper_budget, rng=rng)
        truth = Point(0, 0)
        errors = []
        for _ in range(300):
            candidates = mech.obfuscate(truth)
            arr = np.array([tuple(c) for c in candidates])
            mean = arr.mean(axis=0)
            errors.append(math.hypot(*mean))
        expected = mech.sigma / math.sqrt(paper_budget.n)
        # Mean radial error of a 2D Gaussian is sigma * sqrt(pi/2).
        assert np.mean(errors) == pytest.approx(
            expected * math.sqrt(math.pi / 2), rel=0.15
        )
        # And it is far outside the attack thresholds (200 m / 500 m).
        assert np.median(errors) > 1_000.0
