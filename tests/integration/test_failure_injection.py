"""Failure-injection tests: the system's safety properties under faults.

Each scenario injects a realistic operational failure and checks the
system either keeps its privacy guarantee or fails safe:

* edge restart with persisted table → the attack stays thwarted;
* edge restart WITHOUT persistence (state loss) → fresh randomness leaks,
  demonstrated as an attack-error collapse (this is why the table must be
  durable — the "failure" here is the broken deployment, not the test);
* ledger exhaustion mid-stream → new tops degrade to the nomadic path,
  never to plaintext;
* malformed inputs → loud errors, not silent corruption.
"""

import numpy as np
import pytest

from repro.attack.deobfuscation import DeobfuscationAttack
from repro.core.gaussian import GaussianMechanism, NFoldGaussianMechanism
from repro.core.ledger import PrivacyLedger
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget
from repro.core.posterior import PosteriorSelector
from repro.edge.obfuscation import ObfuscationModule
from repro.geo.point import Point
from repro.persist import table_from_json, table_to_json
from repro.profiles.checkin import CheckIn

BUDGET = GeoIndBudget(r=500.0, epsilon=1.0, delta=0.01, n=10)
HOME = Point(0.0, 0.0)


def serve_reports(module, selector, count):
    """Simulate `count` top-path reports from the pinned candidates."""
    candidates = module.candidates_for(HOME)
    return [selector.select(candidates) for _ in range(count)]


class TestRestartWithPersistence:
    def test_attack_stays_thwarted_across_restart(self):
        """Across restarts the attacker sees only the pinned points.

        The attack error is the distance of the best-supported pinned
        candidate from the truth — a random variable of the original
        draw — so the check is on the median over independent users
        (a single candidate occasionally lands close by chance).
        """
        errors = []
        for seed in range(8):
            rng = default_rng(seed)
            mechanism = NFoldGaussianMechanism(BUDGET, rng=rng)
            selector = PosteriorSelector(mechanism.posterior_sigma, rng=rng)

            module = ObfuscationModule(mechanism)
            module.ensure_obfuscated([HOME])
            reports = serve_reports(module, selector, 300)

            # --- restart: rebuild the module from the persisted table ---
            snapshot = table_to_json(module.table)
            module2 = ObfuscationModule(mechanism)
            module2.table = table_from_json(snapshot)
            reports += serve_reports(module2, selector, 300)

            # 600 observations, all drawn from the SAME 10 pinned points.
            assert len({(p.x, p.y) for p in reports}) <= 10
            attack = DeobfuscationAttack.against(mechanism)
            coords = np.array([(p.x, p.y) for p in reports])
            guess = attack.infer_top1(coords)
            errors.append(guess.distance_to(HOME))
        assert np.median(errors) > 500.0

    def test_state_loss_leaks_fresh_randomness(self):
        """The negative control: losing the table re-randomises.

        Two independently drawn candidate sets give the attacker 20 points
        whose joint mean concentrates faster — across many simulated
        restarts the location would be fully recovered.  The test verifies
        the leak is real (more distinct points than one pinned set).
        """
        rng = default_rng(2)
        mechanism = NFoldGaussianMechanism(BUDGET, rng=rng)
        selector = PosteriorSelector(mechanism.posterior_sigma, rng=rng)

        reports = []
        for _ in range(30):  # 30 restarts, each losing the table
            module = ObfuscationModule(mechanism)
            module.ensure_obfuscated([HOME])
            reports += serve_reports(module, selector, 30)
        distinct = {(p.x, p.y) for p in reports}
        # Posterior selection concentrates on ~a few candidates per set,
        # but every restart leaks a fresh set: far more distinct points
        # than the <= 10 a durable table would ever show.
        assert len(distinct) >= 60
        # The mean across restarts closes in on the true location.
        arr = np.array([(p.x, p.y) for p in reports])
        mean_err = np.hypot(*arr.mean(axis=0))
        assert mean_err < mechanism.sigma / 2


class TestLedgerExhaustionMidStream:
    def test_new_top_degrades_to_nomadic_never_plaintext(self):
        rng = default_rng(3)
        mechanism = NFoldGaussianMechanism(BUDGET, rng=rng)
        nomadic = GaussianMechanism(BUDGET.with_n(1), rng=rng)
        ledger = PrivacyLedger(max_epsilon=1.0)  # exactly one pin
        module = ObfuscationModule(mechanism, ledger=ledger)

        module.ensure_obfuscated([HOME])
        new_top = Point(20_000.0, 0.0)
        module.ensure_obfuscated([new_top])  # refused by the cap
        assert module.skipped_by_ledger == 1
        assert module.candidates_for(new_top) is None

        # The edge's fallback: serve the new top through the nomadic path.
        reported = nomadic.obfuscate(new_top)[0]
        assert reported != new_top
        assert reported.distance_to(new_top) > 10.0


class TestMalformedInputsFailLoud:
    def test_out_of_order_checkins_rejected(self):
        from repro.edge.location_management import LocationManagementModule

        module = LocationManagementModule()
        module.record(CheckIn(100.0, HOME))
        with pytest.raises(ValueError):
            module.record(CheckIn(50.0, HOME))

    def test_corrupted_table_document_rejected(self):
        with pytest.raises(ValueError):
            table_from_json('{"kind": "trace", "checkins": []}')

    def test_nonfinite_budget_rejected(self):
        with pytest.raises(ValueError):
            GeoIndBudget(r=float("nan"), epsilon=1.0, delta=0.01, n=1)

    def test_empty_candidate_pin_rejected(self):
        module = ObfuscationModule(NFoldGaussianMechanism(BUDGET))
        with pytest.raises(ValueError):
            module.table.pin(HOME, [])
