"""Integration tests: the paper's core claims, end to end on one population.

These tests stitch datagen -> mechanisms -> attack -> metrics together and
assert the headline qualitative results of the paper (Fig. 6): one-time
geo-IND deployments leak top locations to the longitudinal attacker, while
the permanent n-fold Gaussian deployment does not.
"""

import math

import pytest

from repro.attack.deobfuscation import DeobfuscationAttack
from repro.attack.success import evaluate_user, success_rate
from repro.core.gaussian import GaussianMechanism, NFoldGaussianMechanism
from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget
from repro.core.posterior import PosteriorSelector
from repro.datagen.obfuscate import one_time_obfuscate, permanent_obfuscate
from repro.profiles.frequent import eta_frequent_set
from repro.profiles.profile import LocationProfile


@pytest.fixture(scope="module")
def population(tiny_population):
    return tiny_population


def attack_one_time(users, level, seed):
    mech = PlanarLaplaceMechanism.from_level(level, 200.0, rng=default_rng(seed))
    attack = DeobfuscationAttack.against(mech)
    outcomes = []
    for u in users:
        observed = one_time_obfuscate(u.trace, mech)
        inferred = [r.location for r in attack.infer_top_locations(observed, 1)]
        outcomes.append(evaluate_user(inferred, u.true_tops[:1]))
    return outcomes


class TestOneTimeGeoIndIsVulnerable:
    @pytest.mark.parametrize("level", [math.log(2), math.log(4), math.log(6)])
    def test_top1_mostly_recovered(self, population, level):
        outcomes = attack_one_time(population, level, seed=17)
        rate = success_rate(outcomes, rank=1, threshold_m=200.0)
        assert rate >= 0.6  # paper: 75-93%

    def test_looser_privacy_is_easier_to_attack(self, population):
        strict = attack_one_time(population, math.log(2), seed=18)
        loose = attack_one_time(population, math.log(6), seed=18)
        assert success_rate(loose, 1, 200.0) >= success_rate(strict, 1, 200.0) - 0.1


class TestPermanentDefenseHolds:
    def test_defended_attack_fails(self, population):
        budget = GeoIndBudget(500.0, 1.0, 0.01, 10)
        rng = default_rng(19)
        mech = NFoldGaussianMechanism(budget, rng=rng)
        nomadic = GaussianMechanism(budget.with_n(1), rng=rng)
        selector = PosteriorSelector(mech.posterior_sigma, rng=rng)
        attack = DeobfuscationAttack.against(mech)
        outcomes = []
        for u in population:
            profile = LocationProfile.from_checkins(u.trace)
            tops = eta_frequent_set(profile, 0.8)
            reported = permanent_obfuscate(
                u.trace, tops, mech, selector, nomadic_mechanism=nomadic
            )
            inferred = [r.location for r in attack.infer_top_locations(reported, 1)]
            outcomes.append(evaluate_user(inferred, u.true_tops[:1]))
        assert success_rate(outcomes, 1, 200.0) <= 0.2
        # The defense's errors are dominated by the pinned noise scale.
        assert success_rate(outcomes, 1, 500.0) <= 0.3

    def test_permanence_matters(self, population):
        """Ablation: re-randomising candidates per request re-enables the attack.

        This is the design-choice ablation from DESIGN.md: if the
        obfuscation table is NOT permanent, the attacker sees fresh noise
        every request and the mean converges back to the true location.
        """
        budget = GeoIndBudget(500.0, 1.0, 0.01, 10)
        rng = default_rng(20)
        mech = NFoldGaussianMechanism(budget, rng=rng)
        selector = PosteriorSelector(mech.posterior_sigma, rng=rng)
        attack = DeobfuscationAttack.against(
            GaussianMechanism(budget.with_n(1), rng=default_rng(0))
        )
        user = max(population, key=lambda u: u.n_checkins)
        # Broken deployment: fresh candidate set per check-in.
        from repro.profiles.checkin import CheckIn

        reported = [
            CheckIn(c.timestamp, selector.select(mech.obfuscate(c.point)))
            for c in user.trace
        ]
        top1 = attack.infer_top1(reported)
        err_broken = top1.distance_to(user.true_tops[0])

        # Correct permanent deployment on the same user.
        profile = LocationProfile.from_checkins(user.trace)
        tops = eta_frequent_set(profile, 0.8)
        pinned = permanent_obfuscate(user.trace, tops, mech, selector)
        attack2 = DeobfuscationAttack.against(mech)
        top1_pinned = attack2.infer_top1(pinned)
        err_pinned = top1_pinned.distance_to(user.true_tops[0])

        assert err_broken < err_pinned
