"""Unit tests for the deterministic process-pool fan-out."""

import numpy as np
import pytest

from repro.parallel import (
    ParallelStats,
    chunk_bounds,
    parallel_map,
    parallel_map_with_stats,
    resolve_workers,
)
from repro.parallel.pool import DEFAULT_TARGET_CHUNKS


def _double(chunk, rng):
    return [2 * x for x in chunk]


def _draw(chunk, rng):
    """One RNG draw per item — the determinism stress case."""
    return [float(rng.normal()) for _ in chunk]


def _add_payload(chunk, rng, payload):
    return [x + payload for x in chunk]


def _wrong_length(chunk, rng):
    return [0]


class TestChunkBounds:
    def test_covers_all_items_exactly_once(self):
        for n in (1, 2, 7, 31, 32, 33, 1000):
            bounds = chunk_bounds(n, None)
            covered = [i for s, e in bounds for i in range(s, e)]
            assert covered == list(range(n))

    def test_explicit_chunk_size(self):
        assert chunk_bounds(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_empty(self):
        assert chunk_bounds(0, None) == []

    def test_default_targets_fixed_chunk_count(self):
        bounds = chunk_bounds(10 * DEFAULT_TARGET_CHUNKS, None)
        assert len(bounds) == DEFAULT_TARGET_CHUNKS

    def test_independent_of_workers(self):
        """Boundaries are a pure function of (n_items, chunk_size)."""
        assert chunk_bounds(100, None) == chunk_bounds(100, None)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            chunk_bounds(10, 0)


class TestResolveWorkers:
    def test_none_and_zero_mean_all_cores(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) == resolve_workers(None)

    def test_passthrough(self):
        assert resolve_workers(3) == 3

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestParallelMap:
    def test_maps_in_order(self):
        assert parallel_map(_double, range(10), workers=1) == [
            2 * i for i in range(10)
        ]

    def test_empty_items(self):
        assert parallel_map(_double, [], workers=4) == []

    def test_payload_serial_and_pool(self):
        expected = [i + 100 for i in range(20)]
        serial = parallel_map(
            _add_payload, range(20), workers=1, payload=100, chunk_size=5
        )
        pooled = parallel_map(
            _add_payload, range(20), workers=2, payload=100, chunk_size=5
        )
        assert serial == expected
        assert pooled == expected

    def test_wrong_result_length_raises(self):
        with pytest.raises(ValueError):
            parallel_map(_wrong_length, range(8), workers=1, chunk_size=4)

    def test_seeded_runs_reproduce(self):
        a = parallel_map(_draw, range(16), workers=1, seed=42, chunk_size=4)
        b = parallel_map(_draw, range(16), workers=1, seed=42, chunk_size=4)
        assert a == b

    def test_different_seeds_differ(self):
        a = parallel_map(_draw, range(16), workers=1, seed=1, chunk_size=4)
        b = parallel_map(_draw, range(16), workers=1, seed=2, chunk_size=4)
        assert a != b


class TestWorkerCountInvariance:
    """The headline guarantee: results are bit-identical for any workers."""

    def test_serial_vs_pool_bit_identical(self):
        serial = parallel_map(_draw, range(64), workers=1, seed=7, chunk_size=8)
        pooled = parallel_map(_draw, range(64), workers=4, seed=7, chunk_size=8)
        assert serial == pooled  # exact float equality, not approx

    def test_two_pool_sizes_bit_identical(self):
        two = parallel_map(_draw, range(64), workers=2, seed=7, chunk_size=8)
        four = parallel_map(_draw, range(64), workers=4, seed=7, chunk_size=8)
        assert two == four


class TestStats:
    def test_serial_stats(self):
        results, stats = parallel_map_with_stats(
            _double, range(12), workers=1, chunk_size=4
        )
        assert len(results) == 12
        assert isinstance(stats, ParallelStats)
        assert stats.workers == 1
        assert not stats.pool_used
        assert [c.size for c in stats.chunk_timings] == [4, 4, 4]
        assert all(c.seconds >= 0.0 for c in stats.chunk_timings)
        assert stats.total_seconds >= 0.0

    def test_pool_stats(self):
        _, stats = parallel_map_with_stats(
            _double, range(12), workers=2, chunk_size=4
        )
        assert stats.pool_used
        assert [c.index for c in stats.chunk_timings] == [0, 1, 2]

    def test_summary_shape(self):
        _, stats = parallel_map_with_stats(
            _double, range(12), workers=1, chunk_size=4
        )
        summary = stats.summary()
        assert summary["workers"] == 1
        assert summary["chunks"] == 3
        assert summary["total_seconds"] >= 0.0
        assert summary["max_seconds"] >= 0.0

    def test_single_chunk_stays_serial(self):
        """One chunk cannot benefit from a pool — no fork overhead paid."""
        _, stats = parallel_map_with_stats(
            _double, range(4), workers=4, chunk_size=100
        )
        assert not stats.pool_used


class TestFig6Determinism:
    """End-to-end: the fig6 attack rows match for any worker count."""

    def test_fig6_rows_identical_across_worker_counts(self):
        from repro.experiments.config import ExperimentScale
        from repro.experiments.fig6_attack import run

        tiny = ExperimentScale(
            name="tiny", trials=10, n_users=5, mc_samples=32, seed=99
        )
        serial = run(tiny, workers=1)
        pooled = run(tiny, workers=4)
        assert serial.rows == pooled.rows
