"""Shared-memory payload transport: round trips, fallbacks, pool identity."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.data.columns import CheckInColumns
from repro.parallel import (
    SHARED_MIN_BYTES,
    SharedArrayRef,
    export_payload,
    import_payload,
    parallel_map,
    parallel_map_with_stats,
    set_shared_memory_enabled,
    shared_memory_enabled,
)

BIG = np.arange(SHARED_MIN_BYTES, dtype=np.float64)  # well above the threshold
SMALL = np.arange(8, dtype=np.float64)


@dataclass(frozen=True)
class _Carrier:
    label: str
    values: np.ndarray


class TestExportImport:
    def test_round_trip_nested_payload(self):
        payload = {
            "big": BIG,
            "small": SMALL,
            "nested": ("x", [1, 2], {"inner": BIG * 2.0}),
            "scalar": 3.5,
        }
        exported, lease = export_payload(payload)
        try:
            assert isinstance(exported["big"], SharedArrayRef)
            assert exported["small"] is SMALL  # below threshold: untouched
            assert lease.n_segments == 2
            assert lease.total_bytes == BIG.nbytes * 2
            imported = import_payload(exported)
            np.testing.assert_array_equal(imported["big"], BIG)
            np.testing.assert_array_equal(imported["nested"][2]["inner"], BIG * 2.0)
            assert imported["small"] is SMALL
            assert imported["scalar"] == 3.5
        finally:
            lease.release()

    def test_imported_arrays_are_read_only(self):
        exported, lease = export_payload({"big": BIG})
        try:
            imported = import_payload(exported)
            assert not imported["big"].flags.writeable
            with pytest.raises(ValueError):
                imported["big"][0] = -1.0
        finally:
            lease.release()

    def test_dataclass_round_trip(self):
        carrier = _Carrier(label="pop", values=BIG)
        exported, lease = export_payload(carrier)
        try:
            imported = import_payload(exported)
            assert isinstance(imported, _Carrier)
            assert imported.label == "pop"
            np.testing.assert_array_equal(imported.values, BIG)
        finally:
            lease.release()

    def test_validated_dataclass_round_trip(self):
        columns = CheckInColumns(
            xs=np.arange(SHARED_MIN_BYTES // 8, dtype=np.float64),
            ys=np.arange(SHARED_MIN_BYTES // 8, dtype=np.float64),
            timestamps=np.arange(SHARED_MIN_BYTES // 8, dtype=np.float64),
            offsets=[0, SHARED_MIN_BYTES // 8],
        )
        exported, lease = export_payload(columns)
        try:
            imported = import_payload(exported)
            assert isinstance(imported, CheckInColumns)
            np.testing.assert_array_equal(imported.xs, columns.xs)
            np.testing.assert_array_equal(imported.offsets, columns.offsets)
        finally:
            lease.release()

    def test_small_payload_passes_through_identically(self):
        payload = {"small": SMALL, "n": 7}
        exported, lease = export_payload(payload)
        assert exported is payload
        assert lease.n_segments == 0
        lease.release()

    def test_min_bytes_threshold(self):
        exported, lease = export_payload({"arr": SMALL}, min_bytes=1)
        try:
            assert isinstance(exported["arr"], SharedArrayRef)
        finally:
            lease.release()

    def test_release_is_idempotent(self):
        _, lease = export_payload({"big": BIG})
        lease.release()
        lease.release()
        assert lease.n_segments == 0


def _sum_chunk(indices, rng, payload):
    coords = payload["coords"]
    return [float(coords[i % len(coords)].sum()) for i in indices]


class TestPoolTransport:
    PAYLOAD = {"coords": np.arange(SHARED_MIN_BYTES, dtype=np.float64).reshape(-1, 2)}

    def test_results_identical_shm_on_off_serial(self):
        serial = parallel_map(
            _sum_chunk, range(24), workers=1, seed=5, payload=self.PAYLOAD
        )
        with_shm, shm_stats = parallel_map_with_stats(
            _sum_chunk,
            range(24),
            workers=2,
            seed=5,
            payload=self.PAYLOAD,
            use_shared_memory=True,
        )
        without_shm, plain_stats = parallel_map_with_stats(
            _sum_chunk,
            range(24),
            workers=2,
            seed=5,
            payload=self.PAYLOAD,
            use_shared_memory=False,
        )
        assert serial == with_shm == without_shm
        if shm_stats.pool_used:
            assert shm_stats.shared_arrays == 1
            assert shm_stats.shared_bytes == self.PAYLOAD["coords"].nbytes
        assert plain_stats.shared_arrays == 0
        assert plain_stats.shared_bytes == 0

    def test_process_wide_toggle(self):
        assert shared_memory_enabled()
        try:
            set_shared_memory_enabled(False)
            _, stats = parallel_map_with_stats(
                _sum_chunk, range(8), workers=2, seed=5, payload=self.PAYLOAD
            )
            assert stats.shared_arrays == 0
        finally:
            set_shared_memory_enabled(True)


def _mmap_sum_chunk(indices, rng, payload):
    return [float(payload["xs"][i] + payload["offset"]) for i in indices]


class TestMmapTransport:
    """Memmap-backed arrays ship by path+offset, not by copy."""

    def _mmap_payload(self, tmp_path, n=1 << 16):
        from repro.data.mmapstore import MmapStore

        store = MmapStore(tmp_path)
        store.store("k", {"xs": np.arange(n, dtype=np.float64)})
        return store.load("k")

    def test_export_returns_mmap_ref_without_shm(self, tmp_path):
        from repro.parallel import MmapArrayRef

        loaded = self._mmap_payload(tmp_path)
        exported, lease = export_payload({"xs": loaded["xs"]})
        try:
            ref = exported["xs"]
            assert isinstance(ref, MmapArrayRef)
            assert lease.n_segments == 0  # nothing copied into shm
            assert lease.mmap_arrays == 1
            assert lease.mmap_bytes == loaded["xs"].nbytes
            imported = import_payload(exported)
            assert isinstance(imported["xs"], np.memmap)
            assert not imported["xs"].flags.writeable
            np.testing.assert_array_equal(imported["xs"], loaded["xs"])
        finally:
            lease.release()

    def test_view_slice_round_trips_with_byte_offset(self, tmp_path):
        from repro.parallel import MmapArrayRef

        loaded = self._mmap_payload(tmp_path)
        view = loaded["xs"][1024:60000]  # stays above SHARED_MIN_BYTES
        exported, lease = export_payload({"xs": view})
        try:
            assert isinstance(exported["xs"], MmapArrayRef)
            assert exported["xs"].offset > 0
            np.testing.assert_array_equal(import_payload(exported)["xs"], view)
        finally:
            lease.release()

    def test_small_mmap_array_ships_by_pickle(self, tmp_path):
        loaded = self._mmap_payload(tmp_path, n=8)
        exported, lease = export_payload({"xs": loaded["xs"]})
        try:
            # Below SHARED_MIN_BYTES a copy is cheaper than a remap.
            assert isinstance(exported["xs"], np.ndarray)
        finally:
            lease.release()

    def test_canonicalised_columns_still_detected(self, tmp_path):
        """ascontiguousarray strips the memmap subclass but keeps the base."""
        from repro.parallel import MmapArrayRef, memmap_backing

        loaded = self._mmap_payload(tmp_path)
        canonical = np.ascontiguousarray(loaded["xs"])
        assert type(canonical) is np.ndarray
        assert memmap_backing(canonical) is not None
        exported, lease = export_payload({"xs": canonical})
        try:
            assert isinstance(exported["xs"], MmapArrayRef)
        finally:
            lease.release()

    def test_pool_results_identical_to_serial(self, tmp_path):
        loaded = self._mmap_payload(tmp_path, n=1 << 16)
        payload = {"xs": loaded["xs"], "offset": 0.5}
        serial = parallel_map(
            _mmap_sum_chunk, range(64), workers=1, seed=1, chunk_size=16, payload=payload
        )
        pooled, stats = parallel_map_with_stats(
            _mmap_sum_chunk, range(64), workers=2, seed=1, chunk_size=16, payload=payload
        )
        assert pooled == serial
        if stats.pool_used:
            assert stats.mmap_arrays == 1
            assert stats.shared_arrays == 0

    def test_vanished_backing_file_falls_back_to_serial(self, tmp_path):
        """Deleting the bundle between export and attach must not crash."""
        loaded = self._mmap_payload(tmp_path)
        payload = {"xs": np.ascontiguousarray(loaded["xs"]), "offset": 0.0}
        expected = parallel_map(
            _mmap_sum_chunk, range(16), workers=1, seed=2, chunk_size=4, payload=payload
        )
        import shutil

        shutil.rmtree(tmp_path / "k")
        results = parallel_map(
            _mmap_sum_chunk, range(16), workers=2, seed=2, chunk_size=4, payload=payload
        )
        assert results == expected
