"""Property: one scenario hash pins one result, whatever the topology.

The fleet contract is that a scenario — identified by its content hash —
fully determines the replay-mode run: the response digest and the
metrics digest are bit-identical across ``--shards 1/2/4`` and across
the inline and process backends, and the fleet audit holds under any
generated fault program.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import run_fleet
from repro.fleet.scenario import (
    DeviceCrash,
    DeviceRestart,
    NetworkHeal,
    NetworkPartition,
    Scenario,
    SlowShard,
    UserHandoff,
)
from repro.serve.events import workload_user_ids

N_USERS = 5
N_EVENTS = 60
N_DEVICES = 4
USERS = workload_user_ids(N_USERS)

WORKLOAD = dict(
    n_users=N_USERS, n_events=N_EVENTS, n_campaigns=20, seed=3, use_processes=False
)

ats = st.integers(min_value=0, max_value=N_EVENTS + 5)
devices = st.integers(min_value=0, max_value=N_DEVICES - 1)

crashes = st.builds(DeviceCrash, at=ats, device=devices, persist_tables=st.booleans())
restarts = st.builds(DeviceRestart, at=ats, device=devices)
handoffs = st.builds(
    UserHandoff, at=ats, user=st.sampled_from(USERS), to_device=devices
)
slow = st.builds(
    SlowShard, at=ats, device=devices, latency_s=st.just(0.002)
)
partitions = st.builds(NetworkPartition, at=ats, shard=devices)
heals = st.builds(NetworkHeal, at=ats, shard=devices)

scenarios = st.builds(
    lambda events: Scenario(name="prop", n_devices=N_DEVICES, events=tuple(events)),
    st.lists(
        st.one_of(crashes, restarts, handoffs, slow, partitions, heals),
        min_size=1,
        max_size=6,
    ),
)


def _run(scenario, n_shards):
    return run_fleet(scenario, n_shards=n_shards, **WORKLOAD)


class TestShardInvariance:
    @given(scenario=scenarios)
    @settings(max_examples=10, deadline=None)
    def test_digests_invariant_across_shard_counts(self, scenario):
        reports = [_run(scenario, shards) for shards in (1, 2, 4)]
        digests = {r.digest for r in reports}
        metrics = {r.metrics_digest() for r in reports}
        assert len(digests) == 1, f"response digest varies with shards: {digests}"
        assert len(metrics) == 1, f"metrics digest varies with shards: {metrics}"
        for report in reports:
            assert report.audit.ok, report.audit

    @given(scenario=scenarios)
    @settings(max_examples=5, deadline=None)
    def test_same_hash_same_result_after_round_trip(self, scenario):
        clone = Scenario.from_json(scenario.to_json())
        assert clone.content_hash() == scenario.content_hash()
        a = _run(scenario, 2)
        b = _run(clone, 2)
        assert a.digest == b.digest
        assert a.metrics_digest() == b.metrics_digest()


class TestBackendInvariance:
    def test_process_backend_matches_inline(self):
        scenario = Scenario(
            name="xbackend",
            n_devices=N_DEVICES,
            events=(
                DeviceCrash(at=15, device=0, persist_tables=True),
                DeviceRestart(at=25, device=0),
                UserHandoff(at=30, user=USERS[1], to_device=3),
                NetworkPartition(at=20, shard=1),
                NetworkHeal(at=40, shard=1),
            ),
        )
        inline = _run(scenario, 2)
        process = run_fleet(
            scenario,
            n_users=N_USERS,
            n_events=N_EVENTS,
            n_campaigns=20,
            seed=3,
            n_shards=2,
            use_processes=True,
        )
        assert process.digest == inline.digest
        assert process.metrics_digest() == inline.metrics_digest()
        assert process.audit.ok and inline.audit.ok
