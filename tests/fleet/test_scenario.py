"""The scenario DSL: round trips, content hashing, validation."""

import json

import pytest

from repro.fleet.scenario import (
    BUILTIN_SCENARIOS,
    DeviceCrash,
    DeviceRestart,
    NetworkHeal,
    NetworkPartition,
    Scenario,
    SlowShard,
    UserHandoff,
    builtin_scenario,
    churn_scenario,
    device_of,
)
from repro.serve.events import workload_user_ids

USERS = workload_user_ids(5)


def sample_scenario():
    return Scenario(
        name="sample",
        n_devices=4,
        events=(
            DeviceCrash(at=10, device=1, persist_tables=False),
            DeviceRestart(at=15, device=1),
            UserHandoff(at=20, user=USERS[0], to_device=2),
            SlowShard(at=25, device=3, latency_s=0.004),
            NetworkPartition(at=12, shard=0),
            NetworkHeal(at=30, shard=0),
        ),
    )


class TestRoundTrip:
    def test_json_round_trip_preserves_events_and_hash(self):
        scenario = sample_scenario()
        restored = Scenario.from_json(scenario.to_json())
        assert restored == scenario
        assert restored.content_hash() == scenario.content_hash()

    def test_from_file_json(self, tmp_path):
        scenario = sample_scenario()
        path = tmp_path / "sample.json"
        path.write_text(scenario.to_json(), encoding="utf-8")
        assert Scenario.from_file(str(path)) == scenario

    def test_from_file_yaml(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        scenario = sample_scenario()
        path = tmp_path / "sample.yaml"
        path.write_text(
            yaml.safe_dump(scenario.to_dict()), encoding="utf-8"
        )
        assert Scenario.from_file(str(path)) == scenario

    def test_canonical_json_is_sorted_and_compact(self):
        text = sample_scenario().to_json()
        assert " " not in text
        assert json.loads(text)["name"] == "sample"

    def test_unknown_event_kind_rejected(self):
        data = sample_scenario().to_dict()
        data["events"][0]["kind"] = "meteor_strike"
        with pytest.raises(ValueError, match="meteor_strike"):
            Scenario.from_dict(data)


class TestContentHash:
    def test_hash_independent_of_authoring_format(self, tmp_path):
        scenario = sample_scenario()
        path = tmp_path / "s.json"
        path.write_text(scenario.to_json(), encoding="utf-8")
        assert Scenario.from_file(str(path)).content_hash() == scenario.content_hash()

    def test_hash_sensitive_to_every_field(self):
        base = sample_scenario()
        moved = Scenario(
            name=base.name,
            n_devices=base.n_devices,
            events=(DeviceCrash(at=11, device=1, persist_tables=False),)
            + base.events[1:],
        )
        renamed = Scenario(name="other", n_devices=4, events=base.events)
        hashes = {base.content_hash(), moved.content_hash(), renamed.content_hash()}
        assert len(hashes) == 3

    def test_builtins_are_pure_functions_of_workload(self):
        for name in BUILTIN_SCENARIOS:
            a = builtin_scenario(name, 200, USERS)
            b = builtin_scenario(name, 200, USERS)
            assert a.content_hash() == b.content_hash()
            assert a.content_hash() != builtin_scenario(
                name, 300, USERS
            ).content_hash()


class TestValidation:
    def test_device_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Scenario(name="bad", n_devices=2, events=(DeviceCrash(at=0, device=5),))

    def test_negative_at(self):
        with pytest.raises(ValueError, match="at must be"):
            Scenario(name="bad", n_devices=2, events=(DeviceRestart(at=-1, device=0),))

    def test_device_of_is_stable(self):
        assert device_of("user-000000", 4) == device_of("user-000000", 4)
        with pytest.raises(ValueError):
            device_of("user-000000", 0)


class TestEventPartitioning:
    def test_shard_vs_network_split_is_stable_ordered(self):
        scenario = sample_scenario()
        shard = scenario.shard_events()
        net = scenario.network_events()
        assert len(shard) + len(net) == len(scenario.events)
        assert [e.at for e in shard] == sorted(e.at for e in shard)
        assert [e.at for e in net] == sorted(e.at for e in net)
        assert all(isinstance(e, (NetworkPartition, NetworkHeal)) for e in net)

    def test_churn_scenario_persist_fraction(self):
        scenario = churn_scenario(
            400, USERS, n_devices=8, churn=0.5, persist_fraction=0.75, seed=2
        )
        crashes = [e for e in scenario.events if isinstance(e, DeviceCrash)]
        assert crashes, "churn must schedule crashes"
        lossy = sum(1 for c in crashes if not c.persist_tables)
        assert 0 < lossy < len(crashes)
