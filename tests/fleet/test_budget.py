"""Budget accounting under faults: no double charge, no silent loss.

A persisted crash/restore round trip lands mid-run — while pinned
obfuscation tables are live and their budget already charged.  Restoring
an actor must never re-emit its ledger gauges, so the faulted run's
total spend is *bitwise* equal to the no-fault baseline's.  A crash
window that leaves a device down reduces spend (unserved events are
never charged) but must keep the gauges bitwise equal to the audit.  A
lossy crash destroys budget instead; that loss must surface on the
``ledger.lost_*`` gauges and reconcile in the conservation check, never
vanish.
"""

from repro.fleet import audit_fleet, run_fleet
from repro.fleet.scenario import DeviceCrash, DeviceRestart, Scenario
from repro.obs.fleet import FLEET_UNSERVED, LEDGER_LOST_EPSILON

WORKLOAD = dict(
    n_users=6, n_events=120, n_campaigns=30, seed=7, n_shards=2, use_processes=False
)


def _baseline():
    return run_fleet(None, **WORKLOAD)


def _lossy_late():
    # Crash past the users' first pin rollovers, so the destroyed
    # ledgers are provably non-empty.
    return Scenario(
        name="late-lossy",
        n_devices=2,
        events=(
            DeviceCrash(at=100, device=0, persist_tables=False),
            DeviceRestart(at=110, device=0),
        ),
    )


class TestNoDoubleCharge:
    def test_crash_restore_mid_pin_window_spends_exactly_once(self):
        baseline = _baseline()
        # Crash + restart at the same tick: a pure snapshot/restore round
        # trip landing mid pin window (pins charge every few events per
        # user, so live tables with charged budget cross the snapshot).
        scenario = Scenario(
            name="crash-mid-pin",
            n_devices=2,
            events=(
                DeviceCrash(at=40, device=0, persist_tables=True),
                DeviceRestart(at=40, device=0),
                DeviceCrash(at=70, device=1, persist_tables=True),
                DeviceRestart(at=70, device=1),
            ),
        )
        faulted = run_fleet(scenario, **WORKLOAD)
        audit = faulted.audit
        assert audit.ok, audit
        # Bitwise: a restore re-emitting even one gauge would break this.
        assert audit.gauge_epsilon == baseline.audit.gauge_epsilon
        assert audit.gauge_delta == baseline.audit.gauge_delta
        assert audit.lost_epsilon == 0.0
        assert audit.lost_entries == 0
        # The round trip is also response-invisible: every event served,
        # every response identical.
        assert faulted.digest == baseline.digest
        assert faulted.processed == baseline.processed

    def test_down_window_reduces_spend_without_breaking_audit(self):
        baseline = _baseline()
        scenario = Scenario(
            name="down-window",
            n_devices=2,
            events=(
                DeviceCrash(at=50, device=0, persist_tables=True),
                DeviceCrash(at=55, device=1, persist_tables=True),
                DeviceRestart(at=60, device=0),
                DeviceRestart(at=65, device=1),
            ),
        )
        faulted = run_fleet(scenario, **WORKLOAD)
        audit = faulted.audit
        assert audit.ok, audit
        unserved = faulted.metrics["counters"].get(FLEET_UNSERVED, 0)
        assert unserved > 0
        # Unserved events are never charged — and never double-charged on
        # restore: spend can only fall relative to the baseline, and the
        # persisted state loses nothing.
        assert audit.gauge_epsilon <= baseline.audit.gauge_epsilon
        assert audit.gauge_epsilon == audit.audit_epsilon
        assert audit.lost_epsilon == 0.0
        assert audit.lost_entries == 0


class TestLossAccounting:
    def test_lossy_crash_surfaces_lost_budget(self):
        report = run_fleet(_lossy_late(), **WORKLOAD)
        audit = report.audit
        assert audit.ok, audit
        assert audit.lost_epsilon > 0.0
        assert audit.lost_entries > 0
        gauges = report.metrics.get("gauges", {})
        assert gauges.get(LEDGER_LOST_EPSILON, 0.0) == audit.lost_epsilon
        # Conservation: surviving + lost reconciles with the audited spend.
        assert abs(audit.conservation_residual_epsilon) <= 1e-9 * max(
            1.0, abs(audit.audit_epsilon)
        )
        # Gauges still equal the audit bitwise — loss is accounted, not
        # smeared into the spend meters.
        assert audit.gauge_epsilon == audit.audit_epsilon

    def test_audit_fleet_matches_report_property(self):
        report = run_fleet(_lossy_late(), **WORKLOAD)
        assert audit_fleet(report.result) == report.audit
