"""Property-based tests for the output-selection weights."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.posterior import posterior_weights
from repro.geo.point import Point

# Domains mirror real deployments (city-scale coordinates, noise scales of
# tens of metres and up); far outside them, float64 cancellation in
# (x - mean)^2 makes exact translation invariance unattainable.
coords = st.floats(min_value=-1e5, max_value=1e5, allow_nan=False)
candidate_lists = st.lists(
    st.builds(Point, coords, coords), min_size=1, max_size=15
)
sigmas = st.floats(min_value=10.0, max_value=1e5, allow_nan=False)


class TestPosteriorWeightProperties:
    @given(candidate_lists, sigmas)
    def test_valid_distribution(self, cands, sigma):
        w = posterior_weights(cands, sigma)
        assert len(w) == len(cands)
        assert (w >= 0).all()
        assert math.isclose(float(w.sum()), 1.0, rel_tol=1e-9)
        assert np.isfinite(w).all()

    @given(candidate_lists, sigmas)
    def test_closer_to_mean_means_heavier(self, cands, sigma):
        w = posterior_weights(cands, sigma)
        arr = np.array([tuple(c) for c in cands], dtype=float)
        mean = arr.mean(axis=0)
        d = np.hypot(arr[:, 0] - mean[0], arr[:, 1] - mean[1])
        order = np.argsort(d)
        sorted_w = w[order]
        # Weights must be non-increasing in distance from the mean.
        assert all(
            a >= b - 1e-12 for a, b in zip(sorted_w, sorted_w[1:])
        )

    @given(candidate_lists, sigmas, coords, coords)
    def test_translation_invariance(self, cands, sigma, dx, dy):
        w1 = posterior_weights(cands, sigma)
        shifted = [c.translate(dx, dy) for c in cands]
        w2 = posterior_weights(shifted, sigma)
        assert np.allclose(w1, w2, atol=1e-3)

    @given(st.builds(Point, coords, coords), st.integers(min_value=1, max_value=10), sigmas)
    def test_identical_candidates_uniform(self, p, k, sigma):
        w = posterior_weights([p] * k, sigma)
        assert np.allclose(w, 1.0 / k)
