"""Property-based tests for the spatial index and clustering invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geo.index import GridIndex, connected_components

point_arrays = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(min_value=1, max_value=60), st.just(2)),
    elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, width=64),
)
radii = st.floats(min_value=0.5, max_value=5e3, allow_nan=False)


class TestClusteringInvariants:
    @given(point_arrays, radii)
    @settings(max_examples=60, deadline=None)
    def test_partition(self, pts, radius):
        """Components partition the index set exactly."""
        comps = connected_components(pts, radius)
        flat = sorted(i for c in comps for i in c)
        assert flat == list(range(len(pts)))

    @given(point_arrays, radii)
    @settings(max_examples=60, deadline=None)
    def test_no_cross_component_closeness(self, pts, radius):
        """No two points in different components may be within the radius."""
        comps = connected_components(pts, radius)
        label = np.empty(len(pts), dtype=int)
        for k, comp in enumerate(comps):
            label[comp] = k
        d2 = ((pts[:, None, :] - pts[None, :, :]) ** 2).sum(-1)
        close = d2 <= radius * radius
        same = label[:, None] == label[None, :]
        assert (close <= same).all()  # close implies same component

    @given(point_arrays, radii)
    @settings(max_examples=40, deadline=None)
    def test_sizes_sorted_descending(self, pts, radius):
        comps = connected_components(pts, radius)
        sizes = [len(c) for c in comps]
        assert sizes == sorted(sizes, reverse=True)

    @given(point_arrays, radii)
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_radius(self, pts, radius):
        """A larger radius can only merge components, never split them."""
        fine = connected_components(pts, radius)
        coarse = connected_components(pts, radius * 2)
        label = np.empty(len(pts), dtype=int)
        for k, comp in enumerate(coarse):
            label[comp] = k
        for comp in fine:
            assert len({label[i] for i in comp}) == 1


class TestQueryInvariants:
    @given(point_arrays, radii, st.floats(min_value=-1e4, max_value=1e4),
           st.floats(min_value=-1e4, max_value=1e4))
    @settings(max_examples=40, deadline=None)
    def test_query_matches_brute_force(self, pts, radius, qx, qy):
        idx = GridIndex(pts, cell_size=max(radius, 1.0))
        got = sorted(idx.query(qx, qy, radius))
        d2 = (pts[:, 0] - qx) ** 2 + (pts[:, 1] - qy) ** 2
        expected = sorted(np.flatnonzero(d2 <= radius * radius).tolist())
        assert got == expected
