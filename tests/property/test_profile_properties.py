"""Property-based tests for profiles, frequent sets, and entropy."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.point import Point
from repro.profiles.checkin import CheckIn
from repro.profiles.frequent import eta_frequent_entries, eta_frequent_set
from repro.profiles.profile import LocationProfile, ProfileEntry

freqs = st.lists(st.integers(min_value=1, max_value=1_000), min_size=1, max_size=25)


def profile_from(freq_list):
    return LocationProfile(
        [ProfileEntry(Point(float(i) * 1_000, 0.0), f) for i, f in enumerate(freq_list)]
    )


class TestEntropyProperties:
    @given(freqs)
    def test_entropy_bounds(self, fs):
        """0 <= entropy <= log(M)."""
        profile = profile_from(fs)
        h = profile.entropy()
        assert -1e-9 <= h <= math.log(len(fs)) + 1e-9

    @given(freqs)
    def test_entropy_invariant_to_scaling(self, fs):
        p1 = profile_from(fs)
        p2 = profile_from([f * 7 for f in fs])
        assert math.isclose(p1.entropy(), p2.entropy(), abs_tol=1e-9)

    @given(st.integers(min_value=2, max_value=25))
    def test_uniform_maximises_entropy(self, m):
        uniform = profile_from([10] * m)
        skewed = profile_from([10 * m - (m - 1)] + [1] * (m - 1))
        assert uniform.entropy() >= skewed.entropy()


class TestFrequentSetProperties:
    @given(freqs, st.floats(min_value=0.01, max_value=1.0, allow_nan=False))
    def test_threshold_reached_or_all_taken(self, fs, eta):
        profile = profile_from(fs)
        entries = eta_frequent_entries(profile, eta)
        total = profile.total_checkins
        mass = sum(e.frequency for e in entries)
        assert mass >= eta * total - 1e-9 or len(entries) == len(fs)

    @given(freqs, st.floats(min_value=0.01, max_value=1.0, allow_nan=False))
    def test_minimality(self, fs, eta):
        profile = profile_from(fs)
        entries = eta_frequent_entries(profile, eta)
        total = profile.total_checkins
        mass = sum(e.frequency for e in entries)
        if mass >= eta * total:
            assert mass - entries[-1].frequency < eta * total

    @given(freqs, st.floats(min_value=0.01, max_value=0.99, allow_nan=False))
    def test_monotone_in_eta(self, fs, eta):
        profile = profile_from(fs)
        small = eta_frequent_set(profile, eta)
        large = eta_frequent_set(profile, min(eta * 1.5, 1.0))
        assert len(large) >= len(small)

    @given(freqs)
    def test_takes_most_frequent_first(self, fs):
        profile = profile_from(fs)
        entries = eta_frequent_entries(profile, 0.5)
        chosen = [e.frequency for e in entries]
        assert chosen == sorted(chosen, reverse=True)
        if len(entries) < len(profile):
            leftover_max = max(
                e.frequency for e in list(profile)[len(entries):]
            )
            assert min(chosen) >= leftover_max


class TestClusteringProfileProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
                st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
            ),
            min_size=1,
            max_size=60,
        ),
        st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_frequencies_sum_to_checkins(self, raw_points, radius):
        trace = [CheckIn(float(i), Point(x, y)) for i, (x, y) in enumerate(raw_points)]
        profile = LocationProfile.from_checkins(trace, connect_radius=radius)
        assert profile.total_checkins == len(trace)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
                st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_frequencies_descending(self, raw_points):
        trace = [CheckIn(float(i), Point(x, y)) for i, (x, y) in enumerate(raw_points)]
        profile = LocationProfile.from_checkins(trace, connect_radius=100.0)
        fs = [e.frequency for e in profile]
        assert fs == sorted(fs, reverse=True)
