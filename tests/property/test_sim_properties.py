"""Property-based tests for the discrete-event queueing model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.queueing import simulate_edge_queue

rates = st.floats(min_value=1.0, max_value=2_000.0, allow_nan=False)
request_counts = st.integers(min_value=1, max_value=400)
worker_counts = st.integers(min_value=1, max_value=8)
service_medians = st.floats(min_value=1e-4, max_value=0.05, allow_nan=False)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestQueueInvariants:
    @given(rates, request_counts, worker_counts, service_medians, seeds)
    @settings(max_examples=40, deadline=None)
    def test_conservation_and_ordering(self, rate, n, workers, median, seed):
        stats = simulate_edge_queue(
            arrival_rate=rate,
            n_requests=n,
            n_workers=workers,
            service_time=lambda rng: float(rng.exponential(median)),
            seed=seed,
        )
        # Every request is served exactly once.
        assert stats.served == n
        # Waits and responses are consistent and non-negative.
        assert stats.mean_wait >= 0.0
        assert stats.mean_response >= stats.mean_wait
        assert 0.0 <= stats.p50_response <= stats.p95_response <= stats.p99_response
        # Utilisation is a physical fraction.
        assert 0.0 <= stats.utilization <= 1.0 + 1e-9
        assert stats.max_queue_len >= 0

    @given(rates, request_counts, service_medians, seeds)
    @settings(max_examples=30, deadline=None)
    def test_more_workers_never_hurt(self, rate, n, median, seed):
        def service(rng):
            return float(rng.exponential(median))

        few = simulate_edge_queue(rate, n, 1, service, seed=seed)
        many = simulate_edge_queue(rate, n, 8, service, seed=seed)
        # Same arrival/service draws differ by stream consumption order, so
        # compare with slack: massively more capacity must not massively
        # increase waiting.
        assert many.mean_wait <= few.mean_wait + median

    @given(request_counts, worker_counts, service_medians, seeds)
    @settings(max_examples=30, deadline=None)
    def test_deterministic_given_seed(self, n, workers, median, seed):
        def service(rng):
            return float(rng.exponential(median))

        a = simulate_edge_queue(100.0, n, workers, service, seed=seed)
        b = simulate_edge_queue(100.0, n, workers, service, seed=seed)
        assert a == b
