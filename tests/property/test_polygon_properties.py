"""Property-based tests for polygon geometry."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.point import Point
from repro.geo.polygon import Polygon

centers = st.builds(
    Point,
    st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
    st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
)
radii = st.floats(min_value=1.0, max_value=5e3, allow_nan=False)
sides = st.integers(min_value=3, max_value=24)


class TestRegularPolygonProperties:
    @given(centers, radii, sides)
    def test_area_formula(self, center, radius, n):
        """Regular n-gon area = n/2 * r^2 * sin(2*pi/n).

        The shoelace sum cancels terms of magnitude ~|center|^2, so the
        absolute tolerance scales with the squared coordinate offset.
        """
        poly = Polygon.regular(center, radius, n)
        expected = 0.5 * n * radius * radius * math.sin(2 * math.pi / n)
        scale = (abs(center.x) + abs(center.y) + radius) ** 2
        assert math.isclose(
            poly.area(), expected, rel_tol=1e-6, abs_tol=1e-10 * scale
        )

    @given(centers, radii, sides)
    def test_centroid_is_center(self, center, radius, n):
        c = Polygon.regular(center, radius, n).centroid()
        # Centroid error inherits the same cancellation, amplified by 1/area.
        tol = max(1e-6, (abs(center.x) + abs(center.y)) * 1e-7 / max(radius, 1.0))
        assert c.distance_to(center) < radius * 1e-6 + tol

    @given(centers, radii, sides)
    def test_center_inside(self, center, radius, n):
        assert Polygon.regular(center, radius, n).contains(center)

    @given(centers, radii, sides)
    def test_far_point_outside(self, center, radius, n):
        far = Point(center.x + 10 * radius, center.y)
        assert not Polygon.regular(center, radius, n).contains(far)

    @given(centers, radii, sides)
    def test_bounding_box_contains_vertices(self, center, radius, n):
        poly = Polygon.regular(center, radius, n)
        box = poly.bounding_box()
        for v in poly.vertices:
            assert box.contains(v)

    @given(centers, radii, sides, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_vectorised_matches_scalar(self, center, radius, n, seed):
        poly = Polygon.regular(center, radius, n)
        rng = np.random.default_rng(seed)
        coords = np.column_stack(
            [
                rng.uniform(center.x - 2 * radius, center.x + 2 * radius, 40),
                rng.uniform(center.y - 2 * radius, center.y + 2 * radius, 40),
            ]
        )
        mask = poly.contains_many(coords)
        for (x, y), inside in zip(coords, mask):
            assert inside == poly.contains(Point(x, y), boundary_tol=0.0)

    @given(centers, radii, sides, st.floats(min_value=0.1, max_value=10.0))
    def test_area_scales_quadratically(self, center, radius, n, factor):
        a1 = Polygon.regular(center, radius, n).area()
        a2 = Polygon.regular(center, radius * factor, n).area()
        scale = (abs(center.x) + abs(center.y) + radius * (1 + factor)) ** 2
        assert math.isclose(
            a2, a1 * factor * factor, rel_tol=1e-5, abs_tol=1e-10 * scale
        )
