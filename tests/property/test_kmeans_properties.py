"""Property-based tests for the from-scratch k-means implementation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.attack.kmeans import kmeans

point_sets = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(min_value=3, max_value=50), st.just(2)),
    elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, width=64),
)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestKMeansProperties:
    @given(point_sets, st.integers(min_value=1, max_value=3), seeds)
    @settings(max_examples=50, deadline=None)
    def test_partition_and_sizes(self, pts, k, seed):
        result = kmeans(pts, k, rng=np.random.default_rng(seed))
        assert result.sizes.sum() == len(pts)
        assert len(result.centroids) == k
        assert result.labels.min() >= 0
        assert result.labels.max() < k

    @given(point_sets, st.integers(min_value=1, max_value=3), seeds)
    @settings(max_examples=50, deadline=None)
    def test_sizes_sorted_descending(self, pts, k, seed):
        result = kmeans(pts, k, rng=np.random.default_rng(seed))
        sizes = result.sizes.tolist()
        assert sizes == sorted(sizes, reverse=True)

    @given(point_sets, st.integers(min_value=1, max_value=3), seeds)
    @settings(max_examples=50, deadline=None)
    def test_labels_point_to_nearest_centroid(self, pts, k, seed):
        result = kmeans(pts, k, rng=np.random.default_rng(seed))
        d2 = ((pts[:, None, :] - result.centroids[None, :, :]) ** 2).sum(-1)
        best = d2.min(axis=1)
        chosen = d2[np.arange(len(pts)), result.labels]
        assert np.allclose(chosen, best)

    @given(point_sets, seeds)
    @settings(max_examples=40, deadline=None)
    def test_k1_centroid_is_mean(self, pts, seed):
        result = kmeans(pts, 1, rng=np.random.default_rng(seed))
        assert np.allclose(result.centroids[0], pts.mean(axis=0), atol=1e-6)

    @given(point_sets, st.integers(min_value=1, max_value=3), seeds)
    @settings(max_examples=40, deadline=None)
    def test_inertia_nonnegative_and_finite(self, pts, k, seed):
        result = kmeans(pts, k, rng=np.random.default_rng(seed))
        assert np.isfinite(result.inertia)
        assert result.inertia >= 0.0
