"""Property tests: population kernels are bit-identical to per-user paths.

The kernels in :mod:`repro.kernels` process an entire CSR shard per array
pass, but each user's slice of the result must equal the per-user
reference path exactly — same clusters, same profile floats, same
eta-frequent prefixes, and byte-equal noise (every user draws from its
own ``SeedSequence.spawn`` stream in the reference call order).  These
tests pin that contract over randomly seeded populations, plus the chunk
invariance that makes the kernels safe under ``parallel_map``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gaussian import GaussianMechanism, NFoldGaussianMechanism
from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.params import GeoIndBudget
from repro.core.posterior import PosteriorSelector
from repro.data.columns import PopulationColumns, chunk_csr
from repro.datagen.obfuscate import (
    one_time_obfuscate_xy,
    permanent_obfuscate_batched_xy,
)
from repro.datagen.population import PopulationConfig, generate_population
from repro.edge.location_management import DEFAULT_ETA
from repro.geo.index import component_labels
from repro.kernels import (
    one_time_laplace_population,
    permanent_obfuscate_population,
    pin_candidates_population,
    population_component_labels,
    population_eta_counts,
    population_eta_tops,
    population_profiles,
    user_rng,
)
from repro.profiles.frequent import eta_frequent_count, eta_frequent_xy
from repro.profiles.profile import DEFAULT_CONNECT_RADIUS_M, LocationProfile

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _checkins(seed, n_users=6):
    users = generate_population(PopulationConfig(n_users=n_users, seed=seed))
    return PopulationColumns.from_users(users).checkins


def _budget(n=10):
    return GeoIndBudget(r=500.0, epsilon=1.0, delta=0.01, n=n)


class TestClusterKernel:
    @given(seeds)
    @settings(max_examples=6, deadline=None)
    def test_labels_match_per_user_component_labels(self, seed):
        """Each user's slice equals standalone clustering of their trace."""
        ck = _checkins(seed)
        for radius in (50.0, DEFAULT_CONNECT_RADIUS_M):
            labels = population_component_labels(
                ck.xs, ck.ys, ck.offsets, radius
            )
            for i in range(ck.n_users):
                sl = slice(int(ck.offsets[i]), int(ck.offsets[i + 1]))
                np.testing.assert_array_equal(
                    labels[sl], component_labels(ck.user_coords(i), radius)
                )


class TestProfileKernel:
    @given(seeds)
    @settings(max_examples=6, deadline=None)
    def test_profiles_match_per_user_from_xy(self, seed):
        """Centroids, counts, and profile order equal the object path."""
        ck = _checkins(seed)
        profiles = population_profiles(ck.xs, ck.ys, ck.offsets)
        assert profiles.n_users == ck.n_users
        for i in range(ck.n_users):
            sl = slice(int(ck.offsets[i]), int(ck.offsets[i + 1]))
            ref = LocationProfile.from_xy(ck.xs[sl], ck.ys[sl])
            psl = profiles.user_slice(i)
            np.testing.assert_array_equal(profiles.xs[psl], ref.xs)
            np.testing.assert_array_equal(profiles.ys[psl], ref.ys)
            np.testing.assert_array_equal(profiles.counts[psl], ref.counts)


class TestEtaKernel:
    @given(seeds)
    @settings(max_examples=6, deadline=None)
    def test_eta_counts_and_tops_match_per_user(self, seed):
        """Prefix lengths and gathered tops equal Algorithm 2 per user."""
        ck = _checkins(seed)
        profiles = population_profiles(ck.xs, ck.ys, ck.offsets)
        for eta in (DEFAULT_ETA, 0.5, 3.0):
            counts = population_eta_counts(profiles, eta)
            top_xs, top_ys, top_offsets = population_eta_tops(profiles, eta)
            for i in range(ck.n_users):
                sl = slice(int(ck.offsets[i]), int(ck.offsets[i + 1]))
                ref_profile = LocationProfile.from_xy(ck.xs[sl], ck.ys[sl])
                assert counts[i] == eta_frequent_count(ref_profile, eta)
                ref_xs, ref_ys = eta_frequent_xy(ref_profile, eta)
                tsl = slice(int(top_offsets[i]), int(top_offsets[i + 1]))
                np.testing.assert_array_equal(top_xs[tsl], ref_xs)
                np.testing.assert_array_equal(top_ys[tsl], ref_ys)


class TestPinKernel:
    @given(seeds)
    @settings(max_examples=6, deadline=None)
    def test_pinning_matches_per_user_obfuscate_batch(self, seed):
        """Candidate tensors equal per-user n-fold batches, byte for byte."""
        ck = _checkins(seed)
        profiles = population_profiles(ck.xs, ck.ys, ck.offsets)
        top_xs, top_ys, top_offsets = population_eta_tops(
            profiles, DEFAULT_ETA
        )
        budget = _budget()
        sigma = NFoldGaussianMechanism(budget).sigma
        candidates = pin_candidates_population(
            top_xs, top_ys, top_offsets, sigma, budget.n, seed
        )
        for i in range(ck.n_users):
            tsl = slice(int(top_offsets[i]), int(top_offsets[i + 1]))
            if tsl.start == tsl.stop:
                continue
            mechanism = NFoldGaussianMechanism(budget, rng=user_rng(seed, i))
            ref = mechanism.obfuscate_batch(
                np.column_stack((top_xs[tsl], top_ys[tsl]))
            )
            np.testing.assert_array_equal(candidates[tsl], ref)


class TestObfuscationKernels:
    @given(seeds)
    @settings(max_examples=4, deadline=None)
    def test_one_time_matches_per_user_xy_path(self, seed):
        """One-time Laplace output equals per-user spawned-rng mechanisms."""
        ck = _checkins(seed)
        level = float(np.log(2))
        epsilon = PlanarLaplaceMechanism.from_level(level, 200.0).epsilon
        reported = one_time_laplace_population(
            ck.xs, ck.ys, ck.offsets, epsilon, seed
        )
        for i in range(ck.n_users):
            sl = slice(int(ck.offsets[i]), int(ck.offsets[i + 1]))
            mechanism = PlanarLaplaceMechanism.from_level(
                level, 200.0, rng=user_rng(seed, i)
            )
            ref = one_time_obfuscate_xy(ck.user_coords(i), mechanism)
            np.testing.assert_array_equal(reported[sl], ref)

    @given(seeds)
    @settings(max_examples=4, deadline=None)
    def test_permanent_matches_per_user_batched_xy(self, seed):
        """Edge-PrivLocAd shard stream equals per-user batched reference."""
        ck = _checkins(seed)
        profiles = population_profiles(ck.xs, ck.ys, ck.offsets)
        top_xs, top_ys, top_offsets = population_eta_tops(
            profiles, DEFAULT_ETA
        )
        budget = _budget()
        shared = NFoldGaussianMechanism(budget)
        nomadic_sigma = GaussianMechanism(budget.with_n(1)).sigma
        reported = permanent_obfuscate_population(
            ck.xs,
            ck.ys,
            ck.offsets,
            top_xs,
            top_ys,
            top_offsets,
            sigma=shared.sigma,
            n=budget.n,
            posterior_sigma=shared.posterior_sigma,
            nomadic_sigma=nomadic_sigma,
            seed=seed,
        )
        for i in range(ck.n_users):
            sl = slice(int(ck.offsets[i]), int(ck.offsets[i + 1]))
            tsl = slice(int(top_offsets[i]), int(top_offsets[i + 1]))
            rng = user_rng(seed, i)
            mechanism = NFoldGaussianMechanism(budget, rng=rng)
            selector = PosteriorSelector(mechanism.posterior_sigma, rng=rng)
            nomadic = GaussianMechanism(budget.with_n(1), rng=rng)
            ref = permanent_obfuscate_batched_xy(
                ck.user_coords(i),
                np.column_stack((top_xs[tsl], top_ys[tsl])),
                mechanism,
                selector,
                nomadic_mechanism=nomadic,
            )
            np.testing.assert_array_equal(reported[sl], ref)


class TestChunkInvariance:
    @given(seeds)
    @settings(max_examples=4, deadline=None)
    def test_chunked_kernels_equal_whole_shard(self, seed):
        """Any contiguous chunk with global user_ids reproduces its slice.

        This is exactly the contract ``parallel_map`` chunking relies on:
        worker boundaries cannot change a single reported byte.
        """
        ck = _checkins(seed, n_users=8)
        level = float(np.log(2))
        epsilon = PlanarLaplaceMechanism.from_level(level, 200.0).epsilon
        whole = one_time_laplace_population(
            ck.xs, ck.ys, ck.offsets, epsilon, seed
        )
        for lo, hi in ((0, 3), (3, 8), (2, 6)):
            cxs, cys, coffsets = chunk_csr(ck.xs, ck.ys, ck.offsets, lo, hi)
            chunked = one_time_laplace_population(
                cxs,
                cys,
                coffsets,
                epsilon,
                seed,
                user_ids=np.arange(lo, hi, dtype=np.int64),
            )
            sl = slice(int(ck.offsets[lo]), int(ck.offsets[hi]))
            np.testing.assert_array_equal(chunked, whole[sl])
