"""Property tests: batched noise sampling matches the per-sample path.

The vectorised fast paths (``obfuscate_batch``,
``posterior_weights_array``, ``select_index_batch``) must be statistically
indistinguishable from the original one-sample-at-a-time code they
replaced — same noise law, same posterior weights, same selection
distribution.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gaussian import GaussianMechanism, NFoldGaussianMechanism
from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget
from repro.core.posterior import (
    PosteriorSelector,
    posterior_weights,
    posterior_weights_array,
)
from repro.geo.point import Point

seeds = st.integers(min_value=0, max_value=2**31 - 1)

N_SAMPLES = 4_000


def _budget(n: int = 1) -> GeoIndBudget:
    return GeoIndBudget(r=500.0, epsilon=1.0, delta=0.01, n=n)


class TestGaussianBatchDistribution:
    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_batch_moments_match_per_sample(self, seed):
        """Batched draws and per-sample draws estimate the same law."""
        origin = np.zeros((N_SAMPLES, 2))
        batch_mech = GaussianMechanism(_budget(), rng=default_rng(seed))
        loop_mech = GaussianMechanism(_budget(), rng=default_rng(seed + 1))

        batched = batch_mech.obfuscate_batch(origin)
        looped = np.array(
            [
                [p.x, p.y]
                for _ in range(N_SAMPLES)
                for p in loop_mech.obfuscate(Point(0.0, 0.0))
            ]
        )
        sigma = batch_mech.sigma
        # Standard error of the mean is sigma/sqrt(N); allow 5 SEs.
        tol = 5 * sigma / np.sqrt(N_SAMPLES)
        assert np.allclose(batched.mean(axis=0), looped.mean(axis=0), atol=2 * tol)
        assert np.allclose(
            batched.std(axis=0), looped.std(axis=0), rtol=0.15
        )
        assert np.allclose(batched.std(axis=0), sigma, rtol=0.1)

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_obfuscate_batch_matches_obfuscate(self, seed):
        """n-fold batched candidate sets follow the per-call noise law."""
        n_fold = 4
        many_mech = NFoldGaussianMechanism(_budget(n_fold), rng=default_rng(seed))
        loop_mech = NFoldGaussianMechanism(
            _budget(n_fold), rng=default_rng(seed + 1)
        )

        locations = np.zeros((N_SAMPLES // n_fold, 2))
        many = many_mech.obfuscate_batch(locations)
        assert many.shape == (len(locations), n_fold, 2)
        flat = many.reshape(-1, 2)
        looped = np.array(
            [
                [p.x, p.y]
                for _ in range(len(locations))
                for p in loop_mech.obfuscate(Point(0.0, 0.0))
            ]
        )
        assert looped.shape == flat.shape
        assert np.allclose(flat.std(axis=0), looped.std(axis=0), rtol=0.2)
        assert np.allclose(flat.std(axis=0), many_mech.sigma, rtol=0.15)


class TestLaplaceBatchDistribution:
    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_batch_radius_matches_per_sample(self, seed):
        """Batched planar-Laplace noise has the same radial law."""
        mech_a = PlanarLaplaceMechanism.from_level(
            np.log(2), 200.0, rng=default_rng(seed)
        )
        mech_b = PlanarLaplaceMechanism.from_level(
            np.log(2), 200.0, rng=default_rng(seed + 1)
        )
        batched = mech_a.obfuscate_batch(np.zeros((N_SAMPLES, 2)))
        looped = np.array(
            [
                [p.x, p.y]
                for _ in range(N_SAMPLES)
                for p in mech_b.obfuscate(Point(0.0, 0.0))
            ]
        )
        r_batch = np.hypot(batched[:, 0], batched[:, 1])
        r_loop = np.hypot(looped[:, 0], looped[:, 1])
        # Planar Laplace radius ~ Gamma(2, 1/eps): mean 2/eps.
        expected = 2.0 / mech_a.epsilon
        assert np.isclose(r_batch.mean(), expected, rtol=0.1)
        assert np.isclose(r_batch.mean(), r_loop.mean(), rtol=0.15)
        assert np.isclose(r_batch.std(), r_loop.std(), rtol=0.25)


class TestPosteriorBatchEquivalence:
    @given(seeds, st.integers(min_value=1, max_value=8))
    @settings(max_examples=25, deadline=None)
    def test_weights_array_matches_per_set(self, seed, n_candidates):
        """The (m, n) weight matrix equals row-wise per-set weights exactly."""
        rng = np.random.default_rng(seed)
        sets = rng.normal(scale=300.0, size=(6, n_candidates, 2))
        matrix = posterior_weights_array(sets, sigma=150.0)
        for i in range(sets.shape[0]):
            candidates = [Point(x, y) for x, y in sets[i]]
            row = posterior_weights(candidates, sigma=150.0)
            assert np.allclose(matrix[i], row, atol=1e-12)

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_select_index_batch_follows_weights(self, seed):
        """Batch selection frequencies converge to the posterior weights."""
        rng = np.random.default_rng(seed)
        one_set = rng.normal(scale=300.0, size=(1, 3, 2))
        sets = np.repeat(one_set, N_SAMPLES, axis=0)
        selector = PosteriorSelector(150.0, rng=default_rng(seed))
        picks = selector.select_index_batch(sets)
        expected = posterior_weights_array(one_set, sigma=150.0)[0]
        freqs = np.bincount(picks, minlength=3) / N_SAMPLES
        assert np.allclose(freqs, expected, atol=0.05)

    def test_select_index_batch_degenerate_rows(self):
        """A candidate at the set mean with far-away rivals dominates."""
        sets = np.array([[[0.0, 0.0], [1e5, 0.0], [-1e5, 0.0]]] * 50)
        selector = PosteriorSelector(100.0, rng=default_rng(3))
        picks = selector.select_index_batch(sets)
        assert (picks == 0).all()
