"""Property tests: columnar fast paths are bit-identical to the object path.

The columnar data plane (CSR populations, ``*_xy`` obfuscation, profile
column views) must not merely approximate the object pipelines it
replaced — every refactored stage consumes the mechanisms' RNG in the
same call order and produces the exact same floats.  These tests pin
that contract over randomly seeded populations.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gaussian import GaussianMechanism, NFoldGaussianMechanism
from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget
from repro.core.posterior import PosteriorSelector
from repro.data.columns import PopulationColumns
from repro.datagen.obfuscate import (
    one_time_obfuscate,
    one_time_obfuscate_xy,
    permanent_obfuscate,
    permanent_obfuscate_xy,
)
from repro.datagen.population import PopulationConfig, generate_population
from repro.edge.location_management import DEFAULT_ETA
from repro.profiles.checkin import checkins_to_array
from repro.profiles.frequent import (
    eta_frequent_count,
    eta_frequent_set,
    eta_frequent_xy,
)
from repro.profiles.profile import LocationProfile

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _population(seed):
    return generate_population(PopulationConfig(n_users=4, seed=seed))


def _budget(n=10):
    return GeoIndBudget(r=500.0, epsilon=1.0, delta=0.01, n=n)


class TestColumnarPopulation:
    @given(seeds)
    @settings(max_examples=8, deadline=None)
    def test_columns_match_object_path(self, seed):
        """CSR slices carry exactly the object path's coordinates and tops."""
        users = _population(seed)
        pop = PopulationColumns.from_users(users)
        for i, user in enumerate(users):
            np.testing.assert_array_equal(
                pop.checkins.user_coords(i), checkins_to_array(user.trace)
            )
            assert pop.user_true_tops(i) == list(user.true_tops)


class TestProfileEquivalence:
    @given(seeds)
    @settings(max_examples=8, deadline=None)
    def test_eta_frequent_xy_matches_object_path(self, seed):
        """Column views of the eta-frequent set equal the entry objects."""
        users = _population(seed)
        pop = PopulationColumns.from_users(users)
        for i in range(pop.n_users):
            profile = LocationProfile.from_coords(pop.checkins.user_coords(i))
            tops = eta_frequent_set(profile, DEFAULT_ETA)
            xs, ys = eta_frequent_xy(profile, DEFAULT_ETA)
            assert len(xs) == len(tops) == eta_frequent_count(profile, DEFAULT_ETA)
            for p, x, y in zip(tops, xs, ys):
                assert p.x == x
                assert p.y == y


class TestObfuscationEquivalence:
    @given(seeds)
    @settings(max_examples=6, deadline=None)
    def test_one_time_xy_matches_object_path(self, seed):
        """Same seed, same noise: the xy path equals the CheckIn path."""
        users = _population(seed)
        trace = users[0].trace
        mech_obj = PlanarLaplaceMechanism.from_level(
            np.log(2), 200.0, rng=default_rng(seed)
        )
        mech_xy = PlanarLaplaceMechanism.from_level(
            np.log(2), 200.0, rng=default_rng(seed)
        )
        via_objects = one_time_obfuscate(trace, mech_obj)
        via_xy = one_time_obfuscate_xy(checkins_to_array(trace), mech_xy)
        assert len(via_objects) == len(via_xy)
        for c, (x, y) in zip(via_objects, via_xy):
            assert c.point.x == x
            assert c.point.y == y

    @given(seeds)
    @settings(max_examples=4, deadline=None)
    def test_permanent_xy_matches_object_path(self, seed):
        """The Edge-PrivLocAd stream is identical on both code paths."""
        users = _population(seed)
        trace = users[0].trace
        coords = checkins_to_array(trace)
        profile = LocationProfile.from_coords(coords)
        tops = eta_frequent_set(profile, DEFAULT_ETA)

        def build():
            rng = default_rng(seed + 1)
            mechanism = NFoldGaussianMechanism(_budget(), rng=rng)
            nomadic = GaussianMechanism(_budget().with_n(1), rng=rng)
            selector = PosteriorSelector(mechanism.posterior_sigma, rng=rng)
            return mechanism, selector, nomadic

        mechanism, selector, nomadic = build()
        via_objects = permanent_obfuscate(
            trace, tops, mechanism, selector, nomadic_mechanism=nomadic
        )
        mechanism, selector, nomadic = build()
        via_xy = permanent_obfuscate_xy(
            coords,
            np.asarray([(p.x, p.y) for p in tops], dtype=float).reshape(-1, 2),
            mechanism,
            selector,
            nomadic_mechanism=nomadic,
        )
        assert len(via_objects) == len(via_xy)
        for c, (x, y) in zip(via_objects, via_xy):
            assert c.point.x == x
            assert c.point.y == y

    @given(seeds)
    @settings(max_examples=4, deadline=None)
    def test_permanent_xy_fresh_nomadic_matches(self, seed):
        """The selector-over-fresh-set nomadic variant is also identical."""
        users = _population(seed)
        trace = users[1].trace
        coords = checkins_to_array(trace)
        profile = LocationProfile.from_coords(coords)
        tops = eta_frequent_set(profile, DEFAULT_ETA)

        def build():
            rng = default_rng(seed + 2)
            mechanism = NFoldGaussianMechanism(_budget(), rng=rng)
            selector = PosteriorSelector(mechanism.posterior_sigma, rng=rng)
            return mechanism, selector

        mechanism, selector = build()
        via_objects = permanent_obfuscate(trace, tops, mechanism, selector)
        mechanism, selector = build()
        via_xy = permanent_obfuscate_xy(
            coords,
            np.asarray([(p.x, p.y) for p in tops], dtype=float).reshape(-1, 2),
            mechanism,
            selector,
        )
        for c, (x, y) in zip(via_objects, via_xy):
            assert c.point.x == x
            assert c.point.y == y
