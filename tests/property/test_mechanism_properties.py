"""Property-based tests for the mechanisms and calibration invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calibration import (
    gaussian_sigma_composition,
    gaussian_sigma_nfold,
    gaussian_sigma_single,
)
from repro.core.gaussian import NFoldGaussianMechanism
from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget, OneTimeBudget
from repro.core.sampling import (
    planar_laplace_radial_quantile,
    rayleigh_quantile,
)
from repro.core.verification import verify_gaussian_geo_ind
from repro.geo.point import Point

rs = st.floats(min_value=50.0, max_value=2_000.0, allow_nan=False)
epsilons = st.floats(min_value=0.1, max_value=5.0, allow_nan=False)
deltas = st.floats(min_value=1e-6, max_value=0.2, allow_nan=False)
ns = st.integers(min_value=1, max_value=20)


class TestCalibrationProperties:
    @given(rs, epsilons, deltas, ns)
    def test_nfold_is_sqrt_n_of_single(self, r, eps, delta, n):
        single = gaussian_sigma_single(r, eps, delta)
        nfold = gaussian_sigma_nfold(r, eps, delta, n)
        assert math.isclose(nfold, math.sqrt(n) * single, rel_tol=1e-12)

    @given(rs, epsilons, deltas, st.integers(min_value=2, max_value=20))
    def test_sufficient_statistic_beats_composition(self, r, eps, delta, n):
        assert gaussian_sigma_nfold(r, eps, delta, n) < gaussian_sigma_composition(
            r, eps, delta, n
        )

    @given(rs, epsilons, deltas, ns)
    @settings(max_examples=40, deadline=None)
    def test_calibrated_sigma_satisfies_budget(self, r, eps, delta, n):
        """Theorem 2 must hold across the whole randomised parameter space."""
        sigma = gaussian_sigma_nfold(r, eps, delta, n)
        assert verify_gaussian_geo_ind(r, eps, delta, n, sigma)

    @given(rs, epsilons, deltas)
    def test_sigma_positive(self, r, eps, delta):
        assert gaussian_sigma_single(r, eps, delta) > 0


class TestQuantileProperties:
    @given(
        st.floats(min_value=0.0, max_value=0.999, allow_nan=False),
        st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
    )
    def test_rayleigh_quantile_monotone_nonneg(self, p, sigma):
        r = rayleigh_quantile(p, sigma)
        assert r >= 0.0
        if p > 0:
            assert r > rayleigh_quantile(p / 2, sigma) or p / 2 == 0.0

    @given(
        st.floats(min_value=0.001, max_value=0.999, allow_nan=False),
        st.floats(min_value=1e-4, max_value=1.0, allow_nan=False),
    )
    def test_laplace_quantile_positive_and_monotone_in_p(self, p, eps):
        r = planar_laplace_radial_quantile(p, eps)
        assert r > 0
        assert r >= planar_laplace_radial_quantile(p / 2, eps)


class TestMechanismOutputProperties:
    @given(ns, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_nfold_output_count_always_n(self, n, seed):
        budget = GeoIndBudget(500.0, 1.0, 0.01, n)
        m = NFoldGaussianMechanism(budget, rng=default_rng(seed))
        assert len(m.obfuscate(Point(0, 0))) == n

    @given(
        st.floats(min_value=-1e5, max_value=1e5),
        st.floats(min_value=-1e5, max_value=1e5),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_outputs_finite_for_any_location(self, x, y, seed):
        m = NFoldGaussianMechanism(
            GeoIndBudget(500.0, 1.0, 0.01, 5), rng=default_rng(seed)
        )
        for out in m.obfuscate(Point(x, y)):
            assert math.isfinite(out.x) and math.isfinite(out.y)

    @given(
        st.floats(min_value=1e-4, max_value=0.1),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_laplace_tail_radius_bounds_quantile(self, eps, seed):
        """noise_tail_radius(alpha) must upper-bound (1-alpha) of draws."""
        m = PlanarLaplaceMechanism(OneTimeBudget(eps), rng=default_rng(seed))
        r = m.noise_tail_radius(0.5)
        draws = m.obfuscate_batch(np.zeros((200, 2)))
        frac_beyond = (np.hypot(draws[:, 0], draws[:, 1]) > r).mean()
        assert frac_beyond < 0.75  # loose statistical sanity bound
