"""Property-based tests for the secret-sharing merge protocol."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.edge.secure_merge import (
    MODULUS,
    reconstruct_histogram,
    share_histogram,
)

count_vectors = arrays(
    dtype=np.int64,
    shape=st.integers(min_value=1, max_value=40),
    elements=st.integers(min_value=0, max_value=1_000_000),
)
party_counts = st.integers(min_value=2, max_value=6)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestSharingProperties:
    @given(count_vectors, party_counts, seeds)
    @settings(max_examples=60, deadline=None)
    def test_reconstruction_is_exact(self, counts, parties, seed):
        rng = np.random.default_rng(seed)
        shares = share_histogram(counts, parties, rng)
        assert (reconstruct_histogram(shares) == counts).all()

    @given(count_vectors, party_counts, seeds)
    @settings(max_examples=60, deadline=None)
    def test_share_count_and_range(self, counts, parties, seed):
        rng = np.random.default_rng(seed)
        shares = share_histogram(counts, parties, rng)
        assert len(shares) == parties
        for s in shares:
            assert (s >= 0).all()
            assert (s < MODULUS).all()

    @given(count_vectors, party_counts, seeds)
    @settings(max_examples=40, deadline=None)
    def test_additivity_of_two_sharings(self, counts, parties, seed):
        """Share-wise sums reconstruct to the sum of the secrets."""
        rng = np.random.default_rng(seed)
        shares_a = share_histogram(counts, parties, rng)
        shares_b = share_histogram(counts, parties, rng)
        summed = [
            (a + b) % MODULUS for a, b in zip(shares_a, shares_b)
        ]
        assert (reconstruct_histogram(summed) == 2 * counts).all()

    @given(count_vectors, seeds)
    @settings(max_examples=40, deadline=None)
    def test_sharings_are_randomised(self, counts, seed):
        """Two sharings of the same secret differ (overwhelmingly)."""
        rng = np.random.default_rng(seed)
        first = share_histogram(counts, 2, rng)
        second = share_histogram(counts, 2, rng)
        if counts.size > 0:
            assert not all(
                (a == b).all() for a, b in zip(first, second)
            )
