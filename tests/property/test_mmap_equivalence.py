"""Property tests: the out-of-core data plane is invisible to results.

Serving columns from memory-mapped ``.npy`` bundles must be a pure
residency change: every byte round-trips losslessly through the
:class:`~repro.data.mmapstore.MmapStore`, population kernels produce
bit-identical outputs whether their inputs live on the heap or in a map,
and a truncated shard file degrades to regeneration exactly like the
established corrupt-``.npz`` cache path.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data import tiers
from repro.data.cache import StageCache
from repro.data.columns import PopulationColumns
from repro.data.mmapstore import MmapStore
from repro.data.tiers import DatasetTier, tier_columns
from repro.datagen.population import PopulationConfig, generate_population
from repro.kernels.frequent import population_eta_counts, population_eta_tops
from repro.kernels.profiles import population_profiles

seeds = st.integers(min_value=0, max_value=2**31 - 1)

float_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=0, max_value=64),
    elements=st.floats(allow_nan=True, allow_infinity=True, width=64),
)
int_arrays = hnp.arrays(
    dtype=np.int64, shape=st.integers(min_value=0, max_value=64)
)


class TestRoundTrip:
    @given(floats=float_arrays, ints=int_arrays)
    @settings(max_examples=25, deadline=None)
    def test_bundle_round_trip_is_bit_lossless(self, tmp_path_factory, floats, ints):
        store = MmapStore(tmp_path_factory.mktemp("mmap"))
        store.store("k", {"f": floats, "i": ints})
        loaded = store.load("k")
        # Byte-level comparison: NaN payloads and signed zeros must
        # survive, not merely compare equal.
        assert loaded["f"].tobytes() == floats.tobytes()
        assert loaded["i"].tobytes() == ints.tobytes()
        assert loaded["f"].dtype == floats.dtype
        assert loaded["i"].dtype == ints.dtype


class TestKernelEquivalence:
    @given(seed=seeds)
    @settings(max_examples=5, deadline=None)
    def test_kernels_bit_identical_on_mmap_columns(self, tmp_path_factory, seed):
        """Heap-served and map-served columns feed kernels identically."""
        users = generate_population(PopulationConfig(n_users=4, seed=seed))
        heap = PopulationColumns.from_users(users)
        store = MmapStore(tmp_path_factory.mktemp("mmap"))
        store.store("pop", heap.arrays())
        mapped = PopulationColumns.from_arrays(store.load("pop"))

        heap_profiles = population_profiles(
            heap.checkins.xs, heap.checkins.ys, heap.checkins.offsets
        )
        mapped_profiles = population_profiles(
            mapped.checkins.xs, mapped.checkins.ys, mapped.checkins.offsets
        )
        for name in ("xs", "ys", "counts", "offsets"):
            assert (
                getattr(heap_profiles, name).tobytes()
                == getattr(mapped_profiles, name).tobytes()
            )
        for eta in (0.5, 3.0):
            assert (
                population_eta_counts(heap_profiles, eta).tobytes()
                == population_eta_counts(mapped_profiles, eta).tobytes()
            )
            for h, m in zip(
                population_eta_tops(heap_profiles, eta),
                population_eta_tops(mapped_profiles, eta),
            ):
                assert h.tobytes() == m.tobytes()


TINY = DatasetTier(
    name="tiny-mmap",
    n_users=5,
    count_log_mean=math.log(30.0),
    count_log_sigma=0.3,
    max_checkins=60,
)


class TestCrashSafety:
    def _tiny(self, monkeypatch):
        monkeypatch.setitem(tiers.TIERS, "tiny-mmap", TINY)
        monkeypatch.setattr(tiers, "TIER_SHARD_USERS", 2)

    def test_mmap_tier_matches_heap_tier(self, monkeypatch, tmp_path):
        self._tiny(monkeypatch)
        heap = tier_columns("tiny-mmap")
        mapped = tier_columns(
            "tiny-mmap", StageCache(tmp_path / "cache"), mmap=True
        )
        for name, expected in heap.arrays().items():
            assert mapped.arrays()[name].tobytes() == expected.tobytes()

    def test_truncated_shard_regenerates(self, monkeypatch, tmp_path):
        """A torn shard write degrades to a miss, like corrupt .npz."""
        self._tiny(monkeypatch)
        cache = StageCache(tmp_path / "cache")
        full = tier_columns("tiny-mmap", cache, mmap=True)
        # Snapshot the bytes now: truncating the backing files below
        # invalidates `full`'s live mappings.
        expected_bytes = {
            name: arr.tobytes() for name, arr in full.arrays().items()
        }
        del full
        store = MmapStore.for_cache_dir(cache.directory)
        # Truncate one shard bundle AND the combined bundle: the rebuild
        # must treat both as misses and regenerate only what's broken.
        config = tiers.tier_config("tiny-mmap")
        shard_npy = store.path_for(tiers._shard_key(config, 2, 4)) / "xs.npy"
        shard_npy.write_bytes(shard_npy.read_bytes()[:-8])
        combined_dir = store.path_for(tiers._combined_key(config))
        (combined_dir / "xs.npy").write_bytes(b"\x93NUMPY")
        again = tier_columns(
            "tiny-mmap", StageCache(tmp_path / "cache"), mmap=True
        )
        for name, expected in expected_bytes.items():
            assert again.arrays()[name].tobytes() == expected
