"""Property-based tests (hypothesis) for the geometric substrate."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.geometry import circle_area, lens_area
from repro.geo.point import Point, centroid, distance
from repro.geo.projection import GeoPoint, LocalProjection, haversine_m

coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, coords, coords)
radii = st.floats(min_value=1e-3, max_value=1e5, allow_nan=False)


class TestDistanceProperties:
    @given(points, points)
    def test_symmetry(self, a, b):
        assert distance(a, b) == distance(b, a)

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert distance(a, c) <= distance(a, b) + distance(b, c) + 1e-6

    @given(points)
    def test_identity(self, p):
        assert distance(p, p) == 0.0

    @given(points, points)
    def test_non_negative(self, a, b):
        assert distance(a, b) >= 0.0

    @given(points, points, coords, coords)
    def test_translation_invariance(self, a, b, dx, dy):
        d1 = distance(a, b)
        d2 = distance(a.translate(dx, dy), b.translate(dx, dy))
        assert math.isclose(d1, d2, rel_tol=1e-6, abs_tol=1e-4)


class TestCentroidProperties:
    @given(st.lists(points, min_size=1, max_size=20))
    def test_centroid_in_bounding_box(self, pts):
        c = centroid(pts)
        assert min(p.x for p in pts) - 1e-6 <= c.x <= max(p.x for p in pts) + 1e-6
        assert min(p.y for p in pts) - 1e-6 <= c.y <= max(p.y for p in pts) + 1e-6

    @given(points, st.integers(min_value=1, max_value=10))
    def test_centroid_of_copies_is_point(self, p, k):
        c = centroid([p] * k)
        assert math.isclose(c.x, p.x, abs_tol=1e-9)
        assert math.isclose(c.y, p.y, abs_tol=1e-9)


class TestLensProperties:
    @given(radii, radii, st.floats(min_value=0, max_value=2e5, allow_nan=False))
    def test_bounded_by_smaller_circle(self, r1, r2, d):
        area = lens_area(r1, r2, d)
        # Relative slack: at r ~ 1e5 the bound is ~3e10 m^2, where float64
        # round-off alone exceeds any fixed absolute epsilon.
        bound = circle_area(min(r1, r2))
        assert 0.0 <= area <= bound * (1 + 1e-12) + 1e-6

    @given(radii, radii, st.floats(min_value=0, max_value=2e5, allow_nan=False))
    def test_symmetric_in_radii(self, r1, r2, d):
        assert math.isclose(
            lens_area(r1, r2, d), lens_area(r2, r1, d), rel_tol=1e-9, abs_tol=1e-9
        )

    @given(radii)
    def test_coincident_equal_circles(self, r):
        assert math.isclose(lens_area(r, r, 0.0), circle_area(r), rel_tol=1e-12)


geo_lats = st.floats(min_value=30.7, max_value=31.4, allow_nan=False)
geo_lons = st.floats(min_value=121.0, max_value=122.0, allow_nan=False)


class TestProjectionProperties:
    @given(geo_lats, geo_lons)
    @settings(max_examples=50)
    def test_roundtrip(self, lat, lon):
        proj = LocalProjection(GeoPoint(31.05, 121.5))
        g = GeoPoint(lat, lon)
        back = proj.to_geo(proj.to_plane(g))
        assert math.isclose(back.lat, lat, abs_tol=1e-9)
        assert math.isclose(back.lon, lon, abs_tol=1e-9)

    @given(geo_lats, geo_lons, geo_lats, geo_lons)
    @settings(max_examples=50)
    def test_distance_preserved_within_tolerance(self, lat1, lon1, lat2, lon2):
        proj = LocalProjection(GeoPoint(31.05, 121.5))
        a, b = GeoPoint(lat1, lon1), GeoPoint(lat2, lon2)
        true = haversine_m(a, b)
        planar = proj.to_plane(a).distance_to(proj.to_plane(b))
        # Worst case is an east-west line at the box edge, where the
        # cos(lat) factor differs from the origin's by ~0.5 %.
        assert abs(planar - true) <= max(2.0, 6e-3 * true)
