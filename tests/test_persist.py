"""Unit tests for JSON persistence of durable system state."""

import pytest

from repro.core.gaussian import NFoldGaussianMechanism
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget
from repro.edge.obfuscation import ObfuscationTable
from repro.geo.point import Point
from repro.persist import (
    load_json,
    profile_from_json,
    profile_to_json,
    save_json,
    table_from_json,
    table_to_json,
    trace_from_json,
    trace_to_json,
)
from repro.profiles.checkin import CheckIn
from repro.profiles.profile import LocationProfile, ProfileEntry


class TestTraceRoundtrip:
    def test_roundtrip(self):
        trace = [CheckIn(1.5, Point(10.25, -3.5)), CheckIn(2.5, Point(0.0, 0.0))]
        assert trace_from_json(trace_to_json(trace)) == trace

    def test_empty_trace(self):
        assert trace_from_json(trace_to_json([])) == []

    def test_kind_mismatch(self):
        with pytest.raises(ValueError):
            trace_from_json(profile_to_json(LocationProfile()))


class TestProfileRoundtrip:
    def test_roundtrip_preserves_order_and_entries(self):
        profile = LocationProfile(
            [ProfileEntry(Point(0, 0), 10), ProfileEntry(Point(5, 5), 30)]
        )
        restored = profile_from_json(profile_to_json(profile))
        assert restored.entries == profile.entries
        assert restored.total_checkins == 40

    def test_empty_profile(self):
        restored = profile_from_json(profile_to_json(LocationProfile()))
        assert len(restored) == 0


class TestTableRoundtrip:
    def test_roundtrip_preserves_pins(self):
        mech = NFoldGaussianMechanism(
            GeoIndBudget(500, 1.0, 0.01, 5), rng=default_rng(0)
        )
        table = ObfuscationTable(match_radius=120.0)
        top = Point(100.0, 200.0)
        table.pin(top, mech.obfuscate(top))
        restored = table_from_json(table_to_json(table))
        assert restored.match_radius == 120.0
        assert restored.lookup(top) == table.lookup(top)

    def test_restored_table_still_permanent(self):
        table = ObfuscationTable()
        table.pin(Point(0, 0), [Point(1, 1)])
        restored = table_from_json(table_to_json(table))
        with pytest.raises(ValueError):
            restored.pin(Point(10, 0), [Point(2, 2)])


class TestFileIo:
    def test_save_and_load(self, tmp_path):
        path = str(tmp_path / "trace.json")
        trace = [CheckIn(0.0, Point(1, 2))]
        save_json(path, trace_to_json(trace))
        assert trace_from_json(load_json(path)) == trace
