"""Documentation quality gate: every public item carries a docstring.

The deliverable requires doc comments on every public item; this test
walks the package and enforces it, so documentation debt fails CI instead
of accumulating silently.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"module {module.__name__} lacks a docstring"
    )


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exported elsewhere; checked at its home module
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(obj):
            for m_name, member in vars(obj).items():
                if m_name.startswith("_"):
                    continue
                if inspect.isfunction(member) and not (
                    member.__doc__ and member.__doc__.strip()
                ):
                    undocumented.append(f"{name}.{m_name}")
    assert not undocumented, (
        f"undocumented public items in {module.__name__}: {undocumented}"
    )
