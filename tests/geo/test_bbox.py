"""Unit tests for planar and geodetic bounding boxes."""

import numpy as np
import pytest

from repro.geo.bbox import BoundingBox, GeoBoundingBox
from repro.geo.point import Point
from repro.geo.projection import GeoPoint


class TestBoundingBox:
    def test_dimensions(self):
        box = BoundingBox(0, 0, 10, 4)
        assert box.width == 10
        assert box.height == 4
        assert box.center == Point(5, 2)

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            BoundingBox(1, 0, 0, 1)

    def test_contains_boundary(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.contains(Point(0, 0))
        assert box.contains(Point(1, 1))
        assert not box.contains(Point(1.001, 0.5))

    def test_clamp_inside_is_identity(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.clamp(Point(5, 5)) == Point(5, 5)

    def test_clamp_projects_outside_points(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.clamp(Point(-5, 20)) == Point(0, 10)

    def test_sample_uniform_inside(self, rng):
        box = BoundingBox(-5, 2, 5, 8)
        pts = box.sample_uniform(200, rng)
        assert pts.shape == (200, 2)
        assert (pts[:, 0] >= -5).all() and (pts[:, 0] <= 5).all()
        assert (pts[:, 1] >= 2).all() and (pts[:, 1] <= 8).all()

    def test_expand_positive_and_negative(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.expand(2) == BoundingBox(-2, -2, 12, 12)
        assert box.expand(-2) == BoundingBox(2, 2, 8, 8)

    def test_expand_degenerate_raises(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 2, 2).expand(-2)


class TestGeoBoundingBox:
    def test_center(self):
        box = GeoBoundingBox(30.7, 121.0, 31.4, 122.0)
        c = box.center
        assert c.lat == pytest.approx(31.05)
        assert c.lon == pytest.approx(121.5)

    def test_contains(self):
        box = GeoBoundingBox(30.7, 121.0, 31.4, 122.0)
        assert box.contains(GeoPoint(31.0, 121.5))
        assert not box.contains(GeoPoint(32.0, 121.5))

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            GeoBoundingBox(31.4, 121.0, 30.7, 122.0)
