"""Unit tests for geodetic coordinates and the local projection."""

import math

import pytest

from repro.geo.point import Point
from repro.geo.projection import (
    EARTH_RADIUS_M,
    GeoPoint,
    LocalProjection,
    haversine_m,
)


class TestGeoPoint:
    def test_valid_coordinates(self):
        g = GeoPoint(31.0, 121.5)
        assert g.lat == 31.0

    @pytest.mark.parametrize("lat", [-91.0, 91.0])
    def test_rejects_bad_latitude(self, lat):
        with pytest.raises(ValueError):
            GeoPoint(lat, 0.0)

    @pytest.mark.parametrize("lon", [-181.0, 181.0])
    def test_rejects_bad_longitude(self, lon):
        with pytest.raises(ValueError):
            GeoPoint(0.0, lon)


class TestHaversine:
    def test_zero_distance(self):
        g = GeoPoint(31.0, 121.0)
        assert haversine_m(g, g) == 0.0

    def test_one_degree_latitude(self):
        d = haversine_m(GeoPoint(0.0, 0.0), GeoPoint(1.0, 0.0))
        assert d == pytest.approx(math.pi * EARTH_RADIUS_M / 180.0, rel=1e-9)

    def test_symmetry(self):
        a, b = GeoPoint(30.7, 121.0), GeoPoint(31.4, 122.0)
        assert haversine_m(a, b) == pytest.approx(haversine_m(b, a))


class TestLocalProjection:
    def test_origin_maps_to_zero(self):
        origin = GeoPoint(31.05, 121.5)
        proj = LocalProjection(origin)
        p = proj.to_plane(origin)
        assert p.x == pytest.approx(0.0)
        assert p.y == pytest.approx(0.0)

    def test_roundtrip(self):
        proj = LocalProjection(GeoPoint(31.05, 121.5))
        g = GeoPoint(31.2, 121.8)
        back = proj.to_geo(proj.to_plane(g))
        assert back.lat == pytest.approx(g.lat, abs=1e-10)
        assert back.lon == pytest.approx(g.lon, abs=1e-10)

    def test_distance_matches_haversine_within_study_region(self):
        """Projection distortion stays well below the paper's thresholds."""
        proj = LocalProjection(GeoPoint(31.05, 121.5))
        a = GeoPoint(30.75, 121.1)
        b = GeoPoint(31.35, 121.9)
        planar = proj.to_plane(a).distance_to(proj.to_plane(b))
        true = haversine_m(a, b)
        # <0.1% relative error over the ~100 km diagonal.
        assert abs(planar - true) / true < 1e-3

    def test_north_is_positive_y(self):
        proj = LocalProjection(GeoPoint(31.0, 121.0))
        north = proj.to_plane(GeoPoint(31.1, 121.0))
        assert north.y > 0
        assert north.x == pytest.approx(0.0)

    def test_east_is_positive_x(self):
        proj = LocalProjection(GeoPoint(31.0, 121.0))
        east = proj.to_plane(GeoPoint(31.0, 121.1))
        assert east.x > 0
        assert east.y == pytest.approx(0.0)

    def test_rejects_polar_origin(self):
        with pytest.raises(ValueError):
            LocalProjection(GeoPoint(90.0, 0.0))
