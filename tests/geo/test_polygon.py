"""Unit tests for simple polygons."""

import math

import numpy as np
import pytest

from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.geo.polygon import Polygon


SQUARE = Polygon.from_coords([(0, 0), (10, 0), (10, 10), (0, 10)])


class TestConstruction:
    def test_needs_three_vertices(self):
        with pytest.raises(ValueError):
            Polygon.from_coords([(0, 0), (1, 1)])

    def test_rectangle_from_bbox(self):
        poly = Polygon.rectangle(BoundingBox(0, 0, 4, 2))
        assert poly.area() == pytest.approx(8.0)

    def test_regular_polygon_area_converges_to_circle(self):
        poly = Polygon.regular(Point(0, 0), radius=10.0, sides=256)
        assert poly.area() == pytest.approx(math.pi * 100.0, rel=1e-3)

    def test_regular_validation(self):
        with pytest.raises(ValueError):
            Polygon.regular(Point(0, 0), 1.0, 2)
        with pytest.raises(ValueError):
            Polygon.regular(Point(0, 0), 0.0, 4)


class TestAreaAndCentroid:
    def test_square_area(self):
        assert SQUARE.area() == pytest.approx(100.0)

    def test_area_orientation_invariant(self):
        reversed_square = Polygon(tuple(reversed(SQUARE.vertices)))
        assert reversed_square.area() == pytest.approx(SQUARE.area())

    def test_triangle_area(self):
        tri = Polygon.from_coords([(0, 0), (4, 0), (0, 3)])
        assert tri.area() == pytest.approx(6.0)

    def test_square_centroid(self):
        c = SQUARE.centroid()
        assert c == Point(5.0, 5.0)

    def test_bounding_box(self):
        box = SQUARE.bounding_box()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, 0, 10, 10)


class TestContainment:
    def test_interior(self):
        assert SQUARE.contains(Point(5, 5))

    def test_exterior(self):
        assert not SQUARE.contains(Point(15, 5))
        assert not SQUARE.contains(Point(-1, 5))

    def test_boundary_counts_as_inside(self):
        assert SQUARE.contains(Point(0, 5))
        assert SQUARE.contains(Point(10, 10))

    def test_concave_polygon(self):
        # An L-shape: the notch must be outside.
        lshape = Polygon.from_coords(
            [(0, 0), (10, 0), (10, 4), (4, 4), (4, 10), (0, 10)]
        )
        assert lshape.contains(Point(2, 8))
        assert lshape.contains(Point(8, 2))
        assert not lshape.contains(Point(8, 8))

    def test_contains_many_matches_scalar(self, rng):
        poly = Polygon.regular(Point(0, 0), radius=10.0, sides=7)
        coords = rng.uniform(-15, 15, (300, 2))
        mask = poly.contains_many(coords)
        for (x, y), inside in zip(coords, mask):
            # Boundary-tolerance differences are irrelevant for random points.
            assert inside == poly.contains(Point(x, y))

    def test_contains_many_bad_shape(self):
        with pytest.raises(ValueError):
            SQUARE.contains_many(np.zeros(3))

    def test_containment_fraction_matches_area(self, rng):
        """Monte-Carlo check: hit fraction ~ polygon area / box area."""
        poly = Polygon.regular(Point(0, 0), radius=10.0, sides=6)
        coords = rng.uniform(-10, 10, (20_000, 2))
        frac = poly.contains_many(coords).mean()
        assert frac == pytest.approx(poly.area() / 400.0, abs=0.01)
