"""Unit tests for planar points and distance helpers."""

import math

import numpy as np
import pytest

from repro.geo.point import (
    Point,
    array_to_points,
    centroid,
    distance,
    distances_to,
    pairwise_distances,
    points_to_array,
)


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_is_symmetric(self):
        a, b = Point(1.5, -2.0), Point(-7.25, 3.0)
        assert a.distance_to(b) == b.distance_to(a)

    def test_distance_to_self_is_zero(self):
        p = Point(12.5, -3.25)
        assert p.distance_to(p) == 0.0

    def test_translate_returns_new_point(self):
        p = Point(1.0, 2.0)
        q = p.translate(3.0, -1.0)
        assert q == Point(4.0, 1.0)
        assert p == Point(1.0, 2.0)

    def test_points_are_hashable_and_equal_by_value(self):
        assert Point(1.0, 2.0) == Point(1.0, 2.0)
        assert len({Point(1.0, 2.0), Point(1.0, 2.0)}) == 1

    def test_iter_unpacks_coordinates(self):
        x, y = Point(3.0, 7.0)
        assert (x, y) == (3.0, 7.0)

    def test_as_tuple(self):
        assert Point(1.0, 2.0).as_tuple() == (1.0, 2.0)

    def test_module_level_distance(self):
        assert distance(Point(0, 0), Point(0, 2)) == 2.0


class TestArrayConversion:
    def test_points_to_array_roundtrip(self):
        pts = [Point(1.0, 2.0), Point(-3.0, 4.5)]
        arr = points_to_array(pts)
        assert arr.shape == (2, 2)
        assert array_to_points(arr) == pts

    def test_points_to_array_empty(self):
        arr = points_to_array([])
        assert arr.shape == (0, 2)

    def test_array_to_points_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            array_to_points(np.zeros((3, 3)))


class TestCentroid:
    def test_centroid_of_square(self):
        pts = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        assert centroid(pts) == Point(1.0, 1.0)

    def test_centroid_single_point(self):
        assert centroid([Point(5, -3)]) == Point(5, -3)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])


class TestDistanceMatrices:
    def test_pairwise_distances_shape_and_values(self):
        pts = [Point(0, 0), Point(3, 4), Point(0, 4)]
        m = pairwise_distances(pts)
        assert m.shape == (3, 3)
        assert np.allclose(np.diag(m), 0.0)
        assert m[0, 1] == pytest.approx(5.0)
        assert m[0, 2] == pytest.approx(4.0)
        assert np.allclose(m, m.T)

    def test_distances_to_matches_pointwise(self):
        pts = [Point(1, 1), Point(-2, 5)]
        target = Point(0, 0)
        d = distances_to(pts, target)
        assert d[0] == pytest.approx(math.sqrt(2))
        assert d[1] == pytest.approx(math.sqrt(29))

    def test_distances_to_empty(self):
        assert distances_to([], Point(0, 0)).shape == (0,)
