"""Unit tests for circle geometry (lens areas, union coverage, disc sampling)."""

import math

import numpy as np
import pytest

from repro.geo.geometry import (
    circle_area,
    circle_overlap_fraction,
    lens_area,
    points_in_any_circle,
    sample_uniform_disc,
    union_coverage_fraction,
)
from repro.geo.point import Point


class TestCircleArea:
    def test_unit_circle(self):
        assert circle_area(1.0) == pytest.approx(math.pi)

    def test_zero_radius(self):
        assert circle_area(0.0) == 0.0

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            circle_area(-1.0)


class TestLensArea:
    def test_disjoint_circles(self):
        assert lens_area(1.0, 1.0, 3.0) == 0.0

    def test_touching_circles(self):
        assert lens_area(1.0, 1.0, 2.0) == 0.0

    def test_coincident_circles(self):
        assert lens_area(2.0, 2.0, 0.0) == pytest.approx(circle_area(2.0))

    def test_contained_circle(self):
        assert lens_area(5.0, 1.0, 2.0) == pytest.approx(circle_area(1.0))

    def test_half_overlap_known_value(self):
        """Equal circles at distance r overlap by 2*pi/3 - sqrt(3)/2 per r^2... known closed form."""
        r, d = 1.0, 1.0
        expected = 2 * r * r * math.acos(d / (2 * r)) - (d / 2) * math.sqrt(
            4 * r * r - d * d
        )
        assert lens_area(r, r, d) == pytest.approx(expected, rel=1e-12)

    def test_monotone_in_distance(self):
        areas = [lens_area(1.0, 1.0, d) for d in np.linspace(0, 2, 21)]
        assert all(a >= b - 1e-12 for a, b in zip(areas, areas[1:]))

    def test_negative_inputs_raise(self):
        with pytest.raises(ValueError):
            lens_area(-1.0, 1.0, 0.5)


class TestOverlapFraction:
    def test_full_overlap(self):
        assert circle_overlap_fraction(Point(0, 0), Point(0, 0), 5.0) == pytest.approx(1.0)

    def test_no_overlap(self):
        assert circle_overlap_fraction(Point(0, 0), Point(20, 0), 5.0) == 0.0

    def test_zero_radius_raises(self):
        with pytest.raises(ValueError):
            circle_overlap_fraction(Point(0, 0), Point(1, 0), 0.0)


class TestUniformDisc:
    def test_all_samples_inside(self, rng):
        pts = sample_uniform_disc(Point(3, -2), 10.0, 500, rng)
        d = np.hypot(pts[:, 0] - 3, pts[:, 1] + 2)
        assert (d <= 10.0 + 1e-9).all()

    def test_area_uniformity(self, rng):
        """Half the samples should land within radius r/sqrt(2)."""
        pts = sample_uniform_disc(Point(0, 0), 1.0, 8000, rng)
        d = np.hypot(pts[:, 0], pts[:, 1])
        inner = (d <= 1.0 / math.sqrt(2)).mean()
        assert inner == pytest.approx(0.5, abs=0.03)

    def test_zero_size(self, rng):
        assert sample_uniform_disc(Point(0, 0), 1.0, 0, rng).shape == (0, 2)

    def test_bad_radius_raises(self, rng):
        with pytest.raises(ValueError):
            sample_uniform_disc(Point(0, 0), -1.0, 10, rng)


class TestPointsInAnyCircle:
    def test_no_centers_means_uncovered(self):
        mask = points_in_any_circle(np.zeros((4, 2)), [], 1.0)
        assert not mask.any()

    def test_membership(self):
        samples = np.array([[0.0, 0.0], [5.0, 0.0], [10.0, 0.0]])
        mask = points_in_any_circle(samples, [Point(0, 0), Point(10, 0)], 1.0)
        assert mask.tolist() == [True, False, True]

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            points_in_any_circle(np.zeros(3), [Point(0, 0)], 1.0)


class TestUnionCoverage:
    def test_single_circle_uses_analytic_lens(self, rng):
        frac = union_coverage_fraction(Point(0, 0), 10.0, [Point(0, 0)], 10.0)
        assert frac == pytest.approx(1.0)

    def test_union_beats_any_single(self, rng):
        aoi = Point(0, 0)
        near = [Point(8.0, 0.0), Point(-8.0, 0.0)]
        both = union_coverage_fraction(aoi, 10.0, near, 10.0, samples=20_000, rng=rng)
        single = circle_overlap_fraction(aoi, near[0], 10.0)
        assert both > single

    def test_monte_carlo_matches_lens(self, rng):
        aoi, aor = Point(0, 0), Point(7.0, 0.0)
        analytic = circle_overlap_fraction(aoi, aor, 10.0)
        # Force the MC path by using two identical AOR circles.
        mc = union_coverage_fraction(
            aoi, 10.0, [aor, aor], 10.0, samples=40_000, rng=rng
        )
        assert mc == pytest.approx(analytic, abs=0.01)

    def test_empty_aor_is_zero(self, rng):
        assert union_coverage_fraction(Point(0, 0), 5.0, [], 5.0, rng=rng) == 0.0
