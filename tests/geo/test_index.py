"""Unit tests for the grid index and fixed-radius connectivity clustering."""

import numpy as np
import pytest

from repro.geo.index import GridIndex, UnionFind, connected_components


def brute_force_components(points: np.ndarray, radius: float):
    """Reference O(n^2) transitive clustering for cross-checking."""
    n = len(points)
    parent = list(range(n))

    def find(i):
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    r2 = radius * radius
    for i in range(n):
        for j in range(i + 1, n):
            d2 = ((points[i] - points[j]) ** 2).sum()
            if d2 <= r2:
                parent[find(i)] = find(j)
    groups = {}
    for i in range(n):
        groups.setdefault(find(i), []).append(i)
    comps = [sorted(g) for g in groups.values()]
    comps.sort(key=lambda c: (-len(c), c[0]))
    return comps


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(3)
        assert uf.find(0) != uf.find(1)

    def test_union_merges(self):
        uf = UnionFind(3)
        assert uf.union(0, 1)
        assert uf.find(0) == uf.find(1)
        assert not uf.union(0, 1)

    def test_transitive(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.find(0) == uf.find(2)
        assert uf.find(3) != uf.find(0)

    def test_groups(self):
        uf = UnionFind(4)
        uf.union(0, 2)
        groups = sorted(sorted(g) for g in uf.groups().values())
        assert groups == [[0, 2], [1], [3]]


class TestGridIndexQuery:
    def test_query_finds_exact_neighbors(self):
        pts = np.array([[0.0, 0.0], [3.0, 0.0], [10.0, 0.0]])
        idx = GridIndex(pts, cell_size=5.0)
        assert sorted(idx.query(0.0, 0.0, 4.0)) == [0, 1]
        assert sorted(idx.query(0.0, 0.0, 11.0)) == [0, 1, 2]

    def test_query_radius_is_inclusive(self):
        pts = np.array([[0.0, 0.0], [5.0, 0.0]])
        idx = GridIndex(pts, cell_size=5.0)
        assert sorted(idx.query(0.0, 0.0, 5.0)) == [0, 1]

    def test_neighbors_excludes_self(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        idx = GridIndex(pts, cell_size=2.0)
        assert idx.neighbors_within(0, 2.0) == [1]

    def test_empty_index(self):
        idx = GridIndex(np.empty((0, 2)), cell_size=1.0)
        assert len(idx) == 0
        assert idx.query(0, 0, 10) == []

    def test_bad_cell_size_raises(self):
        with pytest.raises(ValueError):
            GridIndex(np.zeros((1, 2)), cell_size=0.0)

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            GridIndex(np.zeros((2, 3)), cell_size=1.0)

    def test_negative_radius_raises(self):
        idx = GridIndex(np.zeros((1, 2)), cell_size=1.0)
        with pytest.raises(ValueError):
            idx.query(0, 0, -1.0)


class TestConnectedComponents:
    def test_two_well_separated_clusters(self, rng):
        a = rng.normal(0, 1, (30, 2))
        b = rng.normal(100, 1, (20, 2))
        pts = np.vstack([a, b])
        comps = connected_components(pts, radius=10.0)
        assert len(comps) == 2
        assert len(comps[0]) == 30
        assert len(comps[1]) == 20

    def test_chain_is_transitively_connected(self):
        # Points in a line, each 1.0 apart: one component at radius 1.
        pts = np.column_stack([np.arange(10.0), np.zeros(10)])
        comps = connected_components(pts, radius=1.0)
        assert len(comps) == 1

    def test_chain_breaks_below_threshold(self):
        pts = np.column_stack([np.arange(10.0), np.zeros(10)])
        comps = connected_components(pts, radius=0.99)
        assert len(comps) == 10

    def test_matches_brute_force_on_random_data(self, rng):
        pts = rng.uniform(0, 50, (120, 2))
        for radius in (2.0, 5.0, 9.0):
            fast = connected_components(pts, radius)
            slow = brute_force_components(pts, radius)
            assert fast == slow

    def test_matches_brute_force_dense_cluster(self, rng):
        """Dense blob + scattered singletons: the attack's typical shape."""
        blob = rng.normal(0, 0.5, (200, 2))
        scatter = rng.uniform(20, 100, (30, 2))
        pts = np.vstack([blob, scatter])
        assert connected_components(pts, 3.0) == brute_force_components(pts, 3.0)

    def test_empty_input(self):
        assert connected_components(np.empty((0, 2)), 1.0) == []

    def test_single_point(self):
        assert connected_components(np.array([[1.0, 1.0]]), 1.0) == [[0]]

    def test_coincident_points(self):
        pts = np.zeros((5, 2))
        comps = connected_components(pts, 0.5)
        assert comps == [[0, 1, 2, 3, 4]]

    def test_largest_first_ordering(self, rng):
        small = rng.normal(0, 0.1, (5, 2))
        large = rng.normal(50, 0.1, (15, 2))
        comps = connected_components(np.vstack([small, large]), 2.0)
        assert len(comps[0]) == 15

    def test_bad_radius_raises(self):
        with pytest.raises(ValueError):
            connected_components(np.zeros((2, 2)), 0.0)

    def test_gridindex_method_delegates(self, rng):
        pts = rng.uniform(0, 10, (40, 2))
        idx = GridIndex(pts, cell_size=1.0)
        assert idx.connected_components(2.0) == connected_components(pts, 2.0)
