"""Unit tests for the location profiling attack and entropy statistics."""

import numpy as np
import pytest

from repro.attack.profiling import (
    EntropyObservation,
    ProfilingAttack,
    bucket_mean_entropy,
    entropy_vs_checkins,
    fraction_below_entropy,
)
from repro.geo.point import Point
from repro.profiles.checkin import CheckIn


def trace_at(point, count, t0=0.0):
    return [CheckIn(t0 + i, point) for i in range(count)]


class TestProfilingAttack:
    def test_builds_profile(self):
        attack = ProfilingAttack()
        trace = trace_at(Point(0, 0), 20) + trace_at(Point(1000, 0), 5, t0=100)
        profile = attack.build_profile(trace)
        assert len(profile) == 2

    def test_top_locations(self):
        attack = ProfilingAttack()
        trace = trace_at(Point(0, 0), 20) + trace_at(Point(1000, 0), 5, t0=100)
        tops = attack.top_locations(trace, 1)
        assert len(tops) == 1
        assert tops[0].distance_to(Point(0, 0)) < 1.0

    def test_entropy_of_single_location_is_zero(self):
        attack = ProfilingAttack()
        assert attack.entropy(trace_at(Point(0, 0), 10)) == 0.0

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            ProfilingAttack(connect_radius=0.0)


class TestEntropyStatistics:
    def _observations(self):
        return [
            EntropyObservation(checkins=30, entropy=2.5),
            EntropyObservation(checkins=100, entropy=1.5),
            EntropyObservation(checkins=900, entropy=0.8),
            EntropyObservation(checkins=2_500, entropy=0.5),
        ]

    def test_entropy_vs_checkins(self):
        traces = {
            "a": trace_at(Point(0, 0), 12),
            "b": trace_at(Point(0, 0), 5) + trace_at(Point(1000, 0), 5, t0=50),
        }
        obs = entropy_vs_checkins(traces)
        assert len(obs) == 2
        by_count = {o.checkins: o.entropy for o in obs}
        assert by_count[12] == 0.0  # single-location user
        assert by_count[10] == pytest.approx(np.log(2))  # 50/50 split

    def test_fraction_below_entropy(self):
        obs = self._observations()
        assert fraction_below_entropy(obs, 2.0) == pytest.approx(0.75)
        assert fraction_below_entropy(obs, 10.0) == 1.0
        assert fraction_below_entropy([], 2.0) == 0.0

    def test_bucket_mean_entropy(self):
        rows = bucket_mean_entropy(self._observations(), [20, 200, 2_000])
        labels = [r[0] for r in rows]
        assert labels == ["[20, 200)", "[200, 2000)", ">=2000"]
        # First bucket holds the 30- and 100-check-in users.
        assert rows[0][1] == 2
        assert rows[0][2] == pytest.approx(2.0)
        assert rows[2][1] == 1

    def test_bucket_edges_validation(self):
        with pytest.raises(ValueError):
            bucket_mean_entropy(self._observations(), [100, 20])
        with pytest.raises(ValueError):
            bucket_mean_entropy(self._observations(), [100])

    def test_empty_bucket_is_nan(self):
        rows = bucket_mean_entropy(self._observations(), [20, 25, 200])
        # No user has 20-24 check-ins: the first bucket is empty.
        assert rows[0][1] == 0
        assert np.isnan(rows[0][2])
