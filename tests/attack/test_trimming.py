"""Unit tests for the trimming refinement (Algorithm 1, lines 10-19)."""

import numpy as np
import pytest

from repro.attack.trimming import trim_cluster


class TestTrimCluster:
    def test_discards_far_members(self, rng):
        blob = rng.normal(0, 1, (50, 2))
        outliers = np.array([[100.0, 0.0], [0.0, 150.0]])
        coords = np.vstack([blob, outliers])
        seed = list(range(len(coords)))  # seed includes the outliers
        result = trim_cluster(coords, seed, r_alpha=10.0)
        assert result.converged
        assert len(result.member_indices) == 50
        assert 50 not in result.member_indices
        assert 51 not in result.member_indices

    def test_readmits_nearby_points(self, rng):
        blob = rng.normal(0, 1, (50, 2))
        # Seed with only half the blob; trimming should pull the rest in.
        result = trim_cluster(blob, list(range(25)), r_alpha=10.0)
        assert len(result.member_indices) == 50

    def test_respects_available_mask(self, rng):
        blob = rng.normal(0, 1, (30, 2))
        available = np.ones(30, dtype=bool)
        available[:10] = False
        result = trim_cluster(blob, list(range(10, 30)), 10.0, available=available)
        assert all(i >= 10 for i in result.member_indices)

    def test_centroid_near_truth(self, rng):
        blob = rng.normal(5.0, 1.0, (200, 2))
        result = trim_cluster(blob, list(range(200)), r_alpha=5.0)
        assert abs(result.centroid.x - 5.0) < 0.5
        assert abs(result.centroid.y - 5.0) < 0.5

    def test_empty_seed_raises(self):
        with pytest.raises(ValueError):
            trim_cluster(np.zeros((3, 2)), [], 1.0)

    def test_bad_radius_raises(self):
        with pytest.raises(ValueError):
            trim_cluster(np.zeros((3, 2)), [0], 0.0)

    def test_bad_mask_shape_raises(self):
        with pytest.raises(ValueError):
            trim_cluster(np.zeros((3, 2)), [0], 1.0, available=np.ones(2, dtype=bool))

    def test_all_trimmed_falls_back_to_seed(self):
        """Two far-apart points seeded together: the fixed point keeps one side."""
        coords = np.array([[0.0, 0.0], [1_000.0, 0.0]])
        result = trim_cluster(coords, [0, 1], r_alpha=1.0)
        # Whatever happens, the result must be non-empty and finite.
        assert result.size >= 1
        assert np.isfinite([result.centroid.x, result.centroid.y]).all()

    def test_separates_two_blobs_from_merged_seed(self, rng):
        """Seeded with both blobs, trimming converges onto one of them.

        The blobs are close enough that the merged centroid still captures
        one blob inside r_alpha, so the iteration walks onto it.
        """
        a = rng.normal(0, 1, (60, 2))
        b = rng.normal(12, 1, (40, 2))
        coords = np.vstack([a, b])
        result = trim_cluster(coords, list(range(100)), r_alpha=8.0)
        members = np.array(result.member_indices)
        in_a = (members < 60).sum()
        in_b = (members >= 60).sum()
        assert min(in_a, in_b) <= 3

    def test_empty_fixed_point_falls_back_to_seed(self, rng):
        """Far-apart blobs whose joint centroid is empty: keep the seed."""
        a = rng.normal(0, 1, (60, 2))
        b = rng.normal(30, 1, (40, 2))
        coords = np.vstack([a, b])
        result = trim_cluster(coords, list(range(100)), r_alpha=8.0)
        # The fallback keeps the (whole) seed rather than returning nothing.
        assert result.size == 100
