"""The stable ``Attacker`` protocol and its one-release deprecation shims.

Every longitudinal attacker — Algorithm 1, the k-means baseline, the
temporal refinement, and the MAP estimator — satisfies the
``repro.core.Attacker`` protocol: an ``observe``/``estimate`` evidence
pair plus the ``estimate_xy`` batch fast path.  The pre-protocol
duck-typed spellings (``infer_top1``, ``infer_top_locations`` on
k-means, positional ``MAPAttack.estimate``) survive for one release
behind ``DeprecationWarning`` shims that must return bit-identical
results.
"""

import math

import numpy as np
import pytest

from repro.attack.deobfuscation import DeobfuscationAttack
from repro.attack.estimator import MAPAttack
from repro.attack.kmeans import KMeansAttack
from repro.attack.temporal import TemporalAttack
from repro.core import Attacker, AttackerBase
from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.mechanism import default_rng
from repro.geo.point import Point


def _alg1():
    mechanism = PlanarLaplaceMechanism.from_level(
        math.log(2), 200.0, rng=default_rng(1)
    )
    return DeobfuscationAttack.against(mechanism)


def _coords(rng, center=(100.0, 200.0), n=400, scale=30.0):
    return rng.normal(center, scale, size=(n, 2))


class TestProtocolConformance:
    def test_all_attackers_satisfy_protocol(self, rng):
        attackers = [
            _alg1(),
            KMeansAttack(k=4, rng=default_rng(2)),
            TemporalAttack(_alg1()),
            MAPAttack.gaussian(sigma=100.0),
        ]
        for attacker in attackers:
            assert isinstance(attacker, Attacker)
            assert isinstance(attacker, AttackerBase)
        assert len({a.name for a in attackers}) == len(attackers)

    def test_observe_then_estimate_matches_batch(self, rng):
        coords = _coords(rng)
        attacker = _alg1()
        attacker.observe(coords[:150])
        attacker.observe(coords[150:])
        longitudinal = attacker.estimate(1)
        batch = _alg1().estimate_xy(coords, 1)
        assert [(p.x, p.y) for p in longitudinal] == [
            (p.x, p.y) for p in batch
        ]

    def test_reset_clears_evidence(self, rng):
        attacker = KMeansAttack(k=2, rng=default_rng(3))
        attacker.observe(_coords(rng))
        assert len(attacker.observations) == 400
        attacker.reset()
        assert len(attacker.observations) == 0

    def test_observe_rejects_bad_shape(self, rng):
        attacker = KMeansAttack()
        with pytest.raises(ValueError):
            attacker.observe(np.zeros((5, 3)))

    def test_estimate_xy_validates_request(self, rng):
        with pytest.raises(ValueError):
            _alg1().estimate_xy(_coords(rng), 0)
        with pytest.raises(ValueError):
            _alg1().estimate_xy(np.zeros((4, 3)), 1)


class TestDeprecationShims:
    def test_deobfuscation_infer_top1_warns_and_matches(self, rng):
        coords = _coords(rng)
        fresh = _alg1().estimate_xy(coords, 1)
        with pytest.warns(DeprecationWarning, match="infer_top1"):
            legacy = _alg1().infer_top1(coords)
        assert legacy is not None
        assert (legacy.x, legacy.y) == (fresh[0].x, fresh[0].y)

    def test_kmeans_shims_warn_and_match(self, rng):
        coords = _coords(rng)
        fresh = KMeansAttack(k=3, rng=default_rng(5)).estimate_xy(coords, 2)
        with pytest.warns(DeprecationWarning, match="infer_top_locations"):
            legacy = KMeansAttack(k=3, rng=default_rng(5)).infer_top_locations(
                coords, 2
            )
        assert [(p.x, p.y) for p in legacy] == [(p.x, p.y) for p in fresh]
        with pytest.warns(DeprecationWarning, match="infer_top1"):
            top1 = KMeansAttack(k=3, rng=default_rng(5)).infer_top1(coords)
        assert top1 is not None
        assert (top1.x, top1.y) == (fresh[0].x, fresh[0].y)


class TestMAPAttackDispatch:
    def test_estimate_n_ranks_bound_candidates(self, rng):
        coords = _coords(rng)
        candidates = [Point(100.0, 200.0), Point(500.0, 500.0)]
        attacker = MAPAttack.gaussian(sigma=100.0).with_candidates(candidates)
        attacker.observe(coords)
        ranked = attacker.estimate(2)
        assert (ranked[0].x, ranked[0].y) == (100.0, 200.0)
        assert (ranked[1].x, ranked[1].y) == (500.0, 500.0)

    def test_estimate_xy_without_candidates_raises(self, rng):
        with pytest.raises(ValueError, match="candidate set"):
            MAPAttack.gaussian(sigma=100.0).estimate_xy(_coords(rng), 1)

    def test_legacy_positional_estimate_warns(self, rng):
        coords = _coords(rng)
        candidates = [Point(100.0, 200.0), Point(500.0, 500.0)]
        observations = [Point(float(x), float(y)) for x, y in coords]
        attacker = MAPAttack.gaussian(sigma=100.0)
        with pytest.warns(DeprecationWarning, match="map_candidate"):
            legacy = attacker.estimate(observations, candidates)
        assert legacy.index == 0
        fresh = attacker.map_candidate(observations, candidates)
        assert fresh.index == legacy.index
        assert np.array_equal(fresh.posterior, legacy.posterior)
