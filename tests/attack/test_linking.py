"""Unit tests for the cross-device linking attack."""

import math

import numpy as np
import pytest

from repro.attack.deobfuscation import DeobfuscationAttack
from repro.attack.linking import (
    DeviceLinker,
    split_trace_across_devices,
)
from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.mechanism import default_rng
from repro.datagen.obfuscate import one_time_obfuscate
from repro.geo.point import Point
from repro.profiles.checkin import CheckIn


def device_stream(center, count, rng, scale=30.0):
    return center + rng.normal(0, scale, (count, 2))


class TestSplitTrace:
    def test_partition_complete(self, rng):
        trace = [CheckIn(float(i), Point(0, 0)) for i in range(100)]
        slices = split_trace_across_devices(trace, 3, rng)
        assert len(slices) == 3
        assert sum(len(s) for s in slices) == 100

    def test_single_device(self, rng):
        trace = [CheckIn(0.0, Point(0, 0))]
        assert split_trace_across_devices(trace, 1, rng) == [trace]

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            split_trace_across_devices([], 0, rng)


class TestDeviceLinker:
    def _linker(self):
        return DeviceLinker(
            DeobfuscationAttack(theta=100.0, r_alpha=200.0), link_radius=300.0
        )

    def test_links_same_household(self, rng):
        home = np.array([1_000.0, 1_000.0])
        other_home = np.array([20_000.0, 0.0])
        obs = {
            "phone": device_stream(home, 200, rng),
            "tablet": device_stream(home, 150, rng),
            "stranger": device_stream(other_home, 200, rng),
        }
        links = self._linker().link(obs)
        assert len(links) == 2
        assert links[0].device_ids == ("phone", "tablet")
        assert links[0].anchor.distance_to(Point(*home)) < 100.0

    def test_sparse_devices_omitted(self, rng):
        obs = {
            "phone": device_stream(np.zeros(2), 100, rng),
            "dead": np.empty((0, 2)),
        }
        links = self._linker().link(obs)
        all_ids = [d for l in links for d in l.device_ids]
        assert "dead" not in all_ids

    def test_no_devices(self):
        assert self._linker().link({}) == []

    def test_link_radius_validation(self):
        with pytest.raises(ValueError):
            DeviceLinker(DeobfuscationAttack(theta=1.0, r_alpha=2.0), link_radius=0.0)

    def test_links_obfuscated_streams_end_to_end(self, rng):
        """One-time geo-IND cannot prevent household linking."""
        mech = PlanarLaplaceMechanism.from_level(
            math.log(4), 200.0, rng=default_rng(4)
        )
        home = Point(5_000.0, 5_000.0)
        trace = [CheckIn(float(i), home) for i in range(600)]
        slices = split_trace_across_devices(trace, 2, rng)
        obs = {}
        for i, sl in enumerate(slices):
            perturbed = one_time_obfuscate(sl, mech)
            obs[f"dev{i}"] = np.array([(c.x, c.y) for c in perturbed])
        linker = DeviceLinker(DeobfuscationAttack.against(mech), link_radius=300.0)
        links = linker.link(obs)
        assert len(links) == 1
        assert links[0].size == 2
