"""Unit tests for the k-means attacker baseline."""

import numpy as np
import pytest

from repro.attack.kmeans import KMeansAttack, kmeans
from repro.geo.point import Point


def blobs(rng, centers, sizes, scale=1.0):
    parts = [rng.normal(c, scale, (s, 2)) for c, s in zip(centers, sizes)]
    return np.vstack(parts)


class TestKMeans:
    def test_recovers_separated_centroids(self, rng):
        pts = blobs(rng, [(0, 0), (100, 100)], [60, 40])
        result = kmeans(pts, k=2, rng=rng)
        assert result.sizes.tolist() == [60, 40]
        big, small = result.centroids
        assert np.hypot(*(big - [0, 0])) < 1.0
        assert np.hypot(*(small - [100, 100])) < 1.0

    def test_labels_match_sorted_centroids(self, rng):
        pts = blobs(rng, [(0, 0), (50, 0)], [30, 20])
        result = kmeans(pts, k=2, rng=rng)
        for i, label in enumerate(result.labels):
            c = result.centroids[label]
            d_own = np.hypot(*(pts[i] - c))
            d_other = min(
                np.hypot(*(pts[i] - other)) for other in result.centroids
            )
            assert d_own == pytest.approx(d_other)

    def test_k_equals_n_points(self, rng):
        pts = rng.uniform(0, 100, (5, 2))
        result = kmeans(pts, k=5, rng=rng)
        assert sorted(result.sizes.tolist()) == [1, 1, 1, 1, 1]

    def test_inertia_nonincreasing_in_k(self, rng):
        pts = blobs(rng, [(0, 0), (40, 0), (0, 40)], [30, 30, 30])
        i1 = kmeans(pts, 1, rng=np.random.default_rng(0)).inertia
        i3 = kmeans(pts, 3, rng=np.random.default_rng(0)).inertia
        assert i3 < i1

    def test_identical_points(self):
        pts = np.zeros((10, 2))
        result = kmeans(pts, k=2)
        assert result.inertia == pytest.approx(0.0)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 3)), 1)
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2)), 0)
        with pytest.raises(ValueError):
            kmeans(np.zeros((2, 2)), 5)


class TestKMeansAttack:
    def test_top1_is_biggest_blob(self, rng):
        pts = blobs(rng, [(0, 0), (5_000, 0)], [200, 50], scale=30.0)
        attack = KMeansAttack(k=4, rng=rng)
        top1 = attack.infer_top1(pts)
        assert top1.distance_to(Point(0, 0)) < 50.0

    def test_top2_cover_both_blobs(self, rng):
        """With k matching the structure, the top-2 centroids hit both blobs.

        (k-means may split blobs when k is larger — which is exactly the
        weakness the ablation bench demonstrates against Algorithm 1 — so
        the test pins k=2 for a clean structural check.)
        """
        pts = blobs(rng, [(0, 0), (5_000, 0)], [200, 100], scale=30.0)
        attack = KMeansAttack(k=2, rng=rng)
        tops = attack.infer_top_locations(pts, 2)
        assert tops[0].distance_to(Point(0, 0)) < 60.0
        assert tops[1].distance_to(Point(5_000, 0)) < 60.0

    def test_empty_observations(self):
        assert KMeansAttack().infer_top1(np.empty((0, 2))) is None

    def test_fewer_points_than_k(self, rng):
        pts = rng.uniform(0, 10, (3, 2))
        tops = KMeansAttack(k=8, rng=rng).infer_top_locations(pts, 1)
        assert len(tops) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            KMeansAttack(k=0)
        with pytest.raises(ValueError):
            KMeansAttack().infer_top_locations(np.zeros((5, 2)), 0)
