"""Unit tests for the MAP parameter-estimation attack (Eq. 5)."""

import numpy as np
import pytest

from repro.attack.estimator import (
    MAPAttack,
    gaussian_log_likelihood,
    laplace_log_likelihood,
    map_estimate,
)
from repro.geo.point import Point


class TestGaussianMAP:
    def test_picks_candidate_nearest_observation_mean(self, rng):
        truth = Point(100.0, 0.0)
        candidates = [Point(0, 0), truth, Point(300, 0)]
        observations = [
            Point(truth.x + dx, truth.y + dy)
            for dx, dy in rng.normal(0, 20, (200, 2))
        ]
        attack = MAPAttack.gaussian(sigma=20.0)
        est = attack.estimate(observations, candidates)
        assert est.candidate == truth

    def test_posterior_sums_to_one(self, rng):
        attack = MAPAttack.gaussian(sigma=10.0)
        est = attack.estimate(
            [Point(0, 0)], [Point(0, 0), Point(5, 0), Point(10, 0)]
        )
        assert est.posterior.sum() == pytest.approx(1.0)

    def test_more_observations_sharpen_posterior(self, rng):
        truth = Point(0.0, 0.0)
        candidates = [truth, Point(50.0, 0.0)]
        sigma = 100.0
        attack = MAPAttack.gaussian(sigma=sigma)
        obs = [Point(*row) for row in rng.normal(0, sigma, (500, 2))]
        few = attack.estimate(obs[:5], candidates)
        many = attack.estimate(obs, candidates)
        assert many.posterior.max() >= few.posterior.max() - 0.05

    def test_prior_shifts_decision(self):
        """A strong prior must beat a weak likelihood edge."""
        candidates = [Point(0, 0), Point(1, 0)]
        observations = [Point(0.4, 0.0)]  # slightly favours candidate 0
        est_flat = map_estimate(
            observations, candidates, gaussian_log_likelihood(10.0)
        )
        est_biased = map_estimate(
            observations,
            candidates,
            gaussian_log_likelihood(10.0),
            prior=np.array([0.01, 0.99]),
        )
        assert est_flat.index == 0
        assert est_biased.index == 1


class TestLaplaceMAP:
    def test_recovers_truth(self, rng):
        truth = Point(-200.0, 300.0)
        candidates = [Point(0, 0), truth, Point(500, 500)]
        observations = [
            Point(truth.x + dx, truth.y + dy)
            for dx, dy in rng.laplace(0, 50, (300, 2))
        ]
        attack = MAPAttack.laplace(epsilon=0.02)
        assert attack.estimate(observations, candidates).candidate == truth


class TestValidation:
    def test_empty_candidates_raise(self):
        with pytest.raises(ValueError):
            map_estimate([Point(0, 0)], [], gaussian_log_likelihood(1.0))

    def test_empty_observations_raise(self):
        with pytest.raises(ValueError):
            map_estimate([], [Point(0, 0)], gaussian_log_likelihood(1.0))

    def test_bad_prior_shape_raises(self):
        with pytest.raises(ValueError):
            map_estimate(
                [Point(0, 0)],
                [Point(0, 0), Point(1, 0)],
                gaussian_log_likelihood(1.0),
                prior=np.array([1.0]),
            )

    def test_nonpositive_prior_raises(self):
        with pytest.raises(ValueError):
            map_estimate(
                [Point(0, 0)],
                [Point(0, 0), Point(1, 0)],
                gaussian_log_likelihood(1.0),
                prior=np.array([1.0, 0.0]),
            )

    def test_bad_noise_params_raise(self):
        with pytest.raises(ValueError):
            gaussian_log_likelihood(0.0)
        with pytest.raises(ValueError):
            laplace_log_likelihood(-1.0)
