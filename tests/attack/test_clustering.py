"""Unit tests for the attack's connectivity clustering stage."""

import numpy as np
import pytest

from repro.attack.clustering import Cluster, connectivity_clusters, largest_cluster


class TestConnectivityClusters:
    def test_two_blobs(self, rng):
        a = rng.normal(0, 1, (40, 2))
        b = rng.normal(200, 1, (15, 2))
        clusters = connectivity_clusters(np.vstack([a, b]), theta=10.0)
        assert [c.size for c in clusters] == [40, 15]

    def test_centroid_accuracy(self, rng):
        pts = rng.normal(50, 2, (100, 2))
        clusters = connectivity_clusters(pts, theta=15.0)
        assert len(clusters) == 1
        c = clusters[0].centroid
        assert abs(c.x - 50) < 1.0
        assert abs(c.y - 50) < 1.0

    def test_empty_input(self):
        assert connectivity_clusters(np.empty((0, 2)), 1.0) == []

    def test_bad_theta_raises(self):
        with pytest.raises(ValueError):
            connectivity_clusters(np.zeros((2, 2)), 0.0)

    def test_indices_refer_to_input_rows(self, rng):
        pts = np.array([[0.0, 0.0], [100.0, 0.0], [0.5, 0.0]])
        clusters = connectivity_clusters(pts, theta=1.0)
        big = clusters[0]
        assert sorted(big.indices) == [0, 2]


class TestLargestCluster:
    def test_returns_biggest(self, rng):
        a = rng.normal(0, 0.5, (10, 2))
        b = rng.normal(100, 0.5, (30, 2))
        big = largest_cluster(np.vstack([a, b]), theta=5.0)
        assert big.size == 30

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            largest_cluster(np.empty((0, 2)), 1.0)
