"""Unit tests for the temporal (semantic) attack refinement."""

import math

import numpy as np
import pytest

from repro.attack.deobfuscation import DeobfuscationAttack
from repro.attack.temporal import NIGHT, OFFICE_HOURS, HourWindow, TemporalAttack
from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.mechanism import default_rng
from repro.datagen.casestudy import make_fig4_user
from repro.datagen.obfuscate import one_time_obfuscate
from repro.geo.point import Point
from repro.profiles.checkin import SECONDS_PER_DAY, CheckIn


class TestHourWindow:
    def test_simple_window(self):
        w = HourWindow(9.0, 18.0)
        assert w.contains(10 * 3_600.0)
        assert not w.contains(20 * 3_600.0)

    def test_wrapping_window(self):
        assert NIGHT.contains(23 * 3_600.0)
        assert NIGHT.contains(3 * 3_600.0)
        assert not NIGHT.contains(12 * 3_600.0)

    def test_boundaries(self):
        w = HourWindow(9.0, 18.0)
        assert w.contains(9 * 3_600.0)
        assert not w.contains(18 * 3_600.0)

    def test_multiday_timestamps(self):
        assert OFFICE_HOURS.contains(5 * SECONDS_PER_DAY + 10 * 3_600.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            HourWindow(-1.0, 5.0)


class TestTemporalAttack:
    def _synthetic_observations(self, rng):
        """Home check-ins at night, work during the day, equal volume."""
        home, work = Point(0.0, 0.0), Point(5_000.0, 0.0)
        obs = []
        for day in range(60):
            base = day * SECONDS_PER_DAY
            for hour in (23.0, 2.0, 6.0):
                obs.append(
                    CheckIn(base + hour * 3_600.0,
                            Point(*(np.array([home.x, home.y]) + rng.normal(0, 30, 2))))
                )
            for hour in (10.0, 13.0, 16.0):
                obs.append(
                    CheckIn(base + hour * 3_600.0,
                            Point(*(np.array([work.x, work.y]) + rng.normal(0, 30, 2))))
                )
        return obs, home, work

    def test_separates_home_from_work(self, rng):
        obs, home, work = self._synthetic_observations(rng)
        base = DeobfuscationAttack(theta=100.0, r_alpha=200.0)
        attack = TemporalAttack(base)
        inferred_home, inferred_work = attack.infer_home_and_work(obs)
        assert inferred_home.distance_to(home) < 50.0
        assert inferred_work.distance_to(work) < 50.0

    def test_empty_window_returns_none(self):
        base = DeobfuscationAttack(theta=100.0, r_alpha=200.0)
        attack = TemporalAttack(base)
        day_only = [CheckIn(12 * 3_600.0, Point(0, 0))]
        assert attack.infer_home(day_only) is None

    def test_semantic_attack_on_obfuscated_case_study(self):
        """End to end: recover 'home' semantically from perturbed data."""
        user = make_fig4_user()
        mech = PlanarLaplaceMechanism.from_level(
            math.log(4), 200.0, rng=default_rng(9)
        )
        observed = one_time_obfuscate(user.trace, mech)
        attack = TemporalAttack(DeobfuscationAttack.against(mech))
        inferred_home = attack.infer_home(observed)
        # The generator puts home check-ins at night; the true home is
        # the user's top-1 anchor.
        assert inferred_home is not None
        assert inferred_home.distance_to(user.true_tops[0]) < 200.0
