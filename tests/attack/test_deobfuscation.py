"""Unit tests for the top-n de-obfuscation attack (Algorithm 1)."""

import math

import numpy as np
import pytest

from repro.attack.deobfuscation import DeobfuscationAttack, attack_params_for
from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.mechanism import default_rng
from repro.geo.point import Point
from repro.profiles.checkin import CheckIn


def noisy_cloud(center, count, scale, rng):
    return center + rng.normal(0, scale, (count, 2))


class TestAttackParams:
    def test_params_derive_from_mechanism_tails(self):
        m = PlanarLaplaceMechanism.from_level(math.log(2), 200.0)
        params = attack_params_for(m, alpha=0.05)
        assert params.theta == pytest.approx(m.noise_tail_radius(0.5))
        assert params.r_alpha == pytest.approx(m.noise_tail_radius(0.05))
        assert params.r_alpha > params.theta

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            DeobfuscationAttack(theta=0.0, r_alpha=10.0)
        with pytest.raises(ValueError):
            DeobfuscationAttack(theta=10.0, r_alpha=0.0)


class TestInference:
    def test_recovers_single_location(self, rng):
        truth = np.array([1000.0, -500.0])
        obs = noisy_cloud(truth, 400, 50.0, rng)
        attack = DeobfuscationAttack(theta=60.0, r_alpha=150.0)
        top1 = attack.infer_top1(obs)
        assert top1 is not None
        assert top1.distance_to(Point(*truth)) < 20.0

    def test_recovers_two_locations_in_rank_order(self, rng):
        big = noisy_cloud(np.array([0.0, 0.0]), 300, 40.0, rng)
        small = noisy_cloud(np.array([5_000.0, 0.0]), 100, 40.0, rng)
        obs = np.vstack([big, small])
        attack = DeobfuscationAttack(theta=60.0, r_alpha=130.0)
        results = attack.infer_top_locations(obs, 2)
        assert len(results) == 2
        assert results[0].location.distance_to(Point(0, 0)) < 30.0
        assert results[1].location.distance_to(Point(5_000, 0)) < 30.0
        assert results[0].support > results[1].support

    def test_accepts_checkin_sequences(self, rng):
        obs = noisy_cloud(np.array([0.0, 0.0]), 100, 10.0, rng)
        checkins = [CheckIn(float(i), Point(*row)) for i, row in enumerate(obs)]
        attack = DeobfuscationAttack(theta=20.0, r_alpha=40.0)
        assert attack.infer_top1(checkins) is not None

    def test_pool_exhaustion_returns_fewer(self, rng):
        obs = noisy_cloud(np.array([0.0, 0.0]), 30, 5.0, rng)
        attack = DeobfuscationAttack(theta=20.0, r_alpha=40.0)
        results = attack.infer_top_locations(obs, 5)
        assert 1 <= len(results) < 5

    def test_empty_observations(self):
        attack = DeobfuscationAttack(theta=10.0, r_alpha=20.0)
        assert attack.infer_top_locations(np.empty((0, 2)), 2) == []
        assert attack.infer_top1(np.empty((0, 2))) is None

    def test_bad_n_raises(self):
        attack = DeobfuscationAttack(theta=10.0, r_alpha=20.0)
        with pytest.raises(ValueError):
            attack.infer_top_locations(np.zeros((5, 2)), 0)

    def test_bad_array_shape_raises(self):
        attack = DeobfuscationAttack(theta=10.0, r_alpha=20.0)
        with pytest.raises(ValueError):
            attack.infer_top_locations(np.zeros((5, 3)), 1)

    def test_clusters_removed_between_ranks(self, rng):
        """Rank-2 must not re-use rank-1's points."""
        big = noisy_cloud(np.array([0.0, 0.0]), 200, 30.0, rng)
        small = noisy_cloud(np.array([3_000.0, 0.0]), 50, 30.0, rng)
        obs = np.vstack([big, small])
        attack = DeobfuscationAttack(theta=50.0, r_alpha=100.0)
        results = attack.infer_top_locations(obs, 2)
        assert results[0].support + results[1].support <= 250

    def test_trimming_ablation_changes_behaviour(self, rng):
        """Without trimming, overlapping clouds bias the centroid."""
        big = noisy_cloud(np.array([0.0, 0.0]), 300, 100.0, rng)
        near = noisy_cloud(np.array([600.0, 0.0]), 150, 100.0, rng)
        obs = np.vstack([big, near])
        with_trim = DeobfuscationAttack(theta=150.0, r_alpha=300.0)
        without_trim = DeobfuscationAttack(
            theta=150.0, r_alpha=300.0, use_trimming=False
        )
        err_with = with_trim.infer_top1(obs).distance_to(Point(0, 0))
        err_without = without_trim.infer_top1(obs).distance_to(Point(0, 0))
        # The merged no-trim cluster is dragged toward the second blob.
        assert err_without > err_with

    def test_against_mechanism_end_to_end(self, rng):
        """Full pipeline: obfuscate 500 reports of one location, recover it."""
        mechanism = PlanarLaplaceMechanism.from_level(
            math.log(4), 200.0, rng=default_rng(5)
        )
        truth = np.tile([2_000.0, 2_000.0], (500, 1))
        observed = mechanism.obfuscate_batch(truth)
        attack = DeobfuscationAttack.against(mechanism)
        top1 = attack.infer_top1(observed)
        assert top1.distance_to(Point(2_000, 2_000)) < 100.0
