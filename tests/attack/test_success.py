"""Unit tests for the attack-success metrics."""

import math

import pytest

from repro.attack.success import (
    error_quantiles,
    evaluate_user,
    success_rate,
)
from repro.geo.point import Point


class TestEvaluateUser:
    def test_rank_matching(self):
        outcome = evaluate_user(
            inferred=[Point(10, 0), Point(1000, 0)],
            true_tops=[Point(0, 0), Point(1100, 0)],
        )
        assert outcome.at_rank(1).error_m == pytest.approx(10.0)
        assert outcome.at_rank(2).error_m == pytest.approx(100.0)

    def test_missing_inference_is_infinite_error(self):
        outcome = evaluate_user(inferred=[], true_tops=[Point(0, 0)])
        assert math.isinf(outcome.at_rank(1).error_m)
        assert not outcome.success(1, 1e12)

    def test_none_inference(self):
        outcome = evaluate_user(inferred=[None], true_tops=[Point(0, 0)])
        assert math.isinf(outcome.at_rank(1).error_m)

    def test_rank_beyond_true_tops_absent(self):
        outcome = evaluate_user(inferred=[Point(0, 0)], true_tops=[Point(0, 0)])
        assert outcome.at_rank(2) is None

    def test_success_threshold(self):
        outcome = evaluate_user([Point(150, 0)], [Point(0, 0)])
        assert outcome.success(1, 200.0)
        assert not outcome.success(1, 100.0)


class TestSuccessRate:
    def _outcomes(self):
        return [
            evaluate_user([Point(50, 0)], [Point(0, 0)]),       # hit at 200
            evaluate_user([Point(300, 0)], [Point(0, 0)]),      # miss at 200
            evaluate_user([Point(100, 0), Point(900, 0)],
                          [Point(0, 0), Point(1000, 0)]),       # hit both
        ]

    def test_rate_at_rank1(self):
        rate = success_rate(self._outcomes(), rank=1, threshold_m=200.0)
        assert rate == pytest.approx(2 / 3)

    def test_rank2_excludes_single_top_users(self):
        rate = success_rate(self._outcomes(), rank=2, threshold_m=200.0)
        # Only the third user has a rank-2 truth; it is a hit.
        assert rate == 1.0

    def test_empty_outcomes(self):
        assert success_rate([], 1, 200.0) == 0.0


class TestErrorQuantiles:
    def test_quantiles(self):
        outcomes = [
            evaluate_user([Point(d, 0)], [Point(0, 0)]) for d in (10, 20, 30, 40)
        ]
        q = error_quantiles(outcomes, rank=1, quantiles=[0.5])
        assert q[0.5] == pytest.approx(25.0)

    def test_infinite_errors_excluded(self):
        outcomes = [
            evaluate_user([Point(10, 0)], [Point(0, 0)]),
            evaluate_user([], [Point(0, 0)]),
        ]
        q = error_quantiles(outcomes, rank=1, quantiles=[0.5])
        assert q[0.5] == pytest.approx(10.0)

    def test_no_data_is_nan(self):
        q = error_quantiles([], rank=1, quantiles=[0.5])
        assert math.isnan(q[0.5])
