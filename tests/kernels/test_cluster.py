"""Unit tests for the population clustering kernel's staged resolution.

The property suite pins bit-identity against the per-user path on random
populations; these tests drive the specific machinery — capped witness
probes, the exact fallback, batching boundaries, degenerate shards —
through constructed inputs where each stage's role is known.
"""

import numpy as np
import pytest

from repro.geo.index import component_labels
from repro.kernels import cluster
from repro.kernels.cluster import (
    PROBE_CAPS,
    population_component_labels,
)


def _labels_match_reference(xs, ys, offsets, radius):
    labels = population_component_labels(xs, ys, offsets, radius)
    for i in range(len(offsets) - 1):
        sl = slice(int(offsets[i]), int(offsets[i + 1]))
        np.testing.assert_array_equal(
            labels[sl],
            component_labels(np.column_stack((xs[sl], ys[sl])), radius),
        )
    return labels


class TestDegenerateShards:
    def test_empty_shard(self):
        labels = population_component_labels(
            np.empty(0), np.empty(0), np.array([0, 0, 0]), 100.0
        )
        assert labels.shape == (0,)

    def test_mixed_empty_and_singleton_users(self):
        xs = np.array([0.0, 1000.0])
        ys = np.array([0.0, 1000.0])
        offsets = np.array([0, 0, 1, 1, 2])
        labels = _labels_match_reference(xs, ys, offsets, 100.0)
        np.testing.assert_array_equal(labels, [0, 0])

    def test_radius_must_be_positive(self):
        with pytest.raises(ValueError, match="radius"):
            population_component_labels(
                np.zeros(1), np.zeros(1), np.array([0, 1]), 0.0
            )


class TestStagedResolution:
    def test_probe_resolves_near_boundary_pairs(self):
        """Two clusters of cells joined only through a boundary-distance
        pair: the boxes cannot decide, the capped probe must."""
        radius = 100.0
        # Two dense blobs ~radius apart; points spread inside each cell so
        # neither "surely joined" nor "surely apart" can fire for the
        # cross-blob cell pairs.
        rng = np.random.default_rng(7)
        left = rng.uniform(0.0, 60.0, size=(40, 2))
        right = rng.uniform(0.0, 60.0, size=(40, 2)) + [95.0, 0.0]
        coords = np.concatenate([left, right])
        xs, ys = coords[:, 0], coords[:, 1]
        offsets = np.array([0, len(coords)])
        labels = _labels_match_reference(xs, ys, offsets, radius)
        assert labels.max() == 0  # one merged component

    def test_exact_fallback_when_probes_miss(self):
        """A pair whose only witness points sit beyond every probe cap
        must fall through to the exact cross-pair test."""
        radius = 100.0
        cap = max(PROBE_CAPS)
        # Cell A: `cap` decoy points far from the boundary, then one
        # witness. Grid order within a cell follows input order, so the
        # witness is never probed. Cell B: a single far point whose box
        # spans keep the pair ambiguous.
        ax = np.concatenate([np.full(cap, 5.0), [69.0]])
        ay = np.concatenate([np.linspace(0.0, 60.0, cap), [30.0]])
        bx, by = np.array([168.0]), np.array([30.0])
        xs = np.concatenate([ax, bx])
        ys = np.concatenate([ay, by])
        offsets = np.array([0, len(xs)])
        labels = _labels_match_reference(xs, ys, offsets, radius)
        assert labels[-1] == labels[cap]  # witness joined B to A

    def test_tiny_pair_test_batch_still_exact(self, monkeypatch):
        """Batching boundaries in probe/exact stages change no labels."""
        rng = np.random.default_rng(3)
        coords = rng.uniform(0.0, 800.0, size=(120, 2))
        xs, ys = coords[:, 0], coords[:, 1]
        offsets = np.array([0, 40, 40, 120])
        baseline = population_component_labels(xs, ys, offsets, 90.0)
        monkeypatch.setattr(cluster, "PAIR_TEST_BATCH", 8)
        squeezed = _labels_match_reference(xs, ys, offsets, 90.0)
        np.testing.assert_array_equal(squeezed, baseline)

    def test_rank_order_size_desc_then_first_member(self):
        """Label k is the user's k-th largest component, ties by the
        smallest member index — the per-user contract."""
        xs = np.array([0.0, 1.0, 500.0, 1000.0, 1001.0, 1002.0])
        ys = np.zeros(6)
        offsets = np.array([0, 6])
        labels = _labels_match_reference(xs, ys, offsets, 10.0)
        # sizes: {0,1}=2, {2}=1, {3,4,5}=3 -> ranks 1, 2, 0
        np.testing.assert_array_equal(labels, [1, 1, 2, 0, 0, 0])
