"""Unit tests for edge-side AOI ad filtering."""

import pytest

from repro.ads.bidding import Ad
from repro.ads.delivery import filter_ads_to_aoi
from repro.geo.point import Point


def ad(x, y):
    return Ad(
        campaign_id="c",
        advertiser_id="a",
        business_location=Point(x, y),
        price_paid=1.0,
    )


class TestAoiFiltering:
    def test_keeps_relevant_drops_irrelevant(self):
        ads = [ad(100, 0), ad(10_000, 0)]
        kept, stats = filter_ads_to_aoi(ads, Point(0, 0), targeting_radius=5_000.0)
        assert len(kept) == 1
        assert kept[0].business_location == Point(100, 0)
        assert stats.received == 2
        assert stats.delivered == 1
        assert stats.irrelevant == 1

    def test_relevance_ratio(self):
        ads = [ad(0, 0), ad(1, 0), ad(99_999, 0), ad(99_999, 1)]
        _, stats = filter_ads_to_aoi(ads, Point(0, 0), 5_000.0)
        assert stats.relevance_ratio == pytest.approx(0.5)

    def test_empty_delivery_has_unit_ratio(self):
        _, stats = filter_ads_to_aoi([], Point(0, 0), 5_000.0)
        assert stats.relevance_ratio == 1.0

    def test_boundary_inclusive(self):
        kept, _ = filter_ads_to_aoi([ad(5_000, 0)], Point(0, 0), 5_000.0)
        assert len(kept) == 1

    def test_bad_radius_raises(self):
        with pytest.raises(ValueError):
            filter_ads_to_aoi([], Point(0, 0), 0.0)
