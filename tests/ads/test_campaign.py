"""Unit tests for advertisers and radius-targeting campaigns."""

import pytest

from repro.ads.campaign import Advertiser, Campaign
from repro.geo.point import Point


ADV = Advertiser(advertiser_id="adv-1", name="Cafe")


class TestCampaign:
    def test_targets_within_radius(self):
        c = Campaign("c1", ADV, Point(0, 0), radius_m=1_000.0)
        assert c.targets(Point(999, 0))
        assert c.targets(Point(1_000, 0))
        assert not c.targets(Point(1_001, 0))

    def test_create_assigns_unique_ids(self):
        a = Campaign.create(ADV, Point(0, 0), 1_000.0)
        b = Campaign.create(ADV, Point(0, 0), 1_000.0)
        assert a.campaign_id != b.campaign_id

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            Campaign("c", ADV, Point(0, 0), radius_m=0.0)

    def test_rejects_bad_bid(self):
        with pytest.raises(ValueError):
            Campaign("c", ADV, Point(0, 0), radius_m=1_000.0, bid_price=0.0)

    def test_platform_validation_accepts_legal_radius(self):
        c = Campaign("c", ADV, Point(0, 0), radius_m=10_000.0, platform="google")
        assert c.platform == "google"

    def test_platform_validation_rejects_illegal_radius(self):
        """Google's Table I minimum is 5 km."""
        with pytest.raises(ValueError):
            Campaign("c", ADV, Point(0, 0), radius_m=1_000.0, platform="google")

    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError):
            Campaign("c", ADV, Point(0, 0), radius_m=1_000.0, platform="yahoo")

    def test_tencent_allows_500m(self):
        c = Campaign("c", ADV, Point(0, 0), radius_m=500.0, platform="tencent")
        assert c.radius_m == 500.0
