"""Unit tests for the Table I platform limits."""

import pytest

from repro.ads.platform_limits import (
    MILES_TO_M,
    PLATFORM_LIMITS,
    PlatformLimit,
    common_radius_interval,
)


class TestPlatformLimit:
    def test_allows_inside_range(self):
        limit = PlatformLimit("x", 500.0, 25_000.0)
        assert limit.allows(5_000.0)
        assert limit.allows(500.0)
        assert limit.allows(25_000.0)
        assert not limit.allows(499.0)
        assert not limit.allows(25_001.0)

    def test_invalid_limits_raise(self):
        with pytest.raises(ValueError):
            PlatformLimit("x", 0.0, 100.0)
        with pytest.raises(ValueError):
            PlatformLimit("x", 200.0, 100.0)


class TestTableI:
    def test_all_four_platforms_present(self):
        assert set(PLATFORM_LIMITS) == {"google", "microsoft", "facebook", "tencent"}

    def test_google_values(self):
        g = PLATFORM_LIMITS["google"]
        assert g.min_radius_m == 5_000.0
        assert g.max_radius_m == 65_000.0

    def test_facebook_uses_miles(self):
        f = PLATFORM_LIMITS["facebook"]
        assert f.min_radius_m == pytest.approx(MILES_TO_M)
        assert f.max_radius_m == pytest.approx(50 * MILES_TO_M)

    def test_common_interval_is_5_to_25_km(self):
        """The paper derives R = 5 km from this interval."""
        lo, hi = common_radius_interval()
        assert lo == pytest.approx(5_000.0)
        assert hi == pytest.approx(25_000.0)
