"""Unit tests for the three geo-targeting categories (paper Section II-A)."""

import pytest

from repro.ads.targeting import (
    AdministrativeArea,
    AreaRegistry,
    AreaTargeting,
    CountryTargeting,
    RadiusTargeting,
    RequestGeo,
)
from repro.geo.point import Point
from repro.geo.polygon import Polygon


DOWNTOWN = AdministrativeArea(
    "cn-sh-01", "Downtown", Polygon.from_coords([(0, 0), (100, 0), (100, 100), (0, 100)])
)
SUBURB = AdministrativeArea(
    "cn-sh-02", "Suburb", Polygon.from_coords([(100, 0), (300, 0), (300, 100), (100, 100)])
)


class TestCountryTargeting:
    def test_matches_case_insensitively(self):
        t = CountryTargeting.of("cn", "US")
        assert t.matches(RequestGeo.of(country="CN"))
        assert t.matches(RequestGeo.of(country="us"))
        assert not t.matches(RequestGeo.of(country="DE"))

    def test_missing_country_never_matches(self):
        assert not CountryTargeting.of("CN").matches(RequestGeo.of())

    def test_needs_countries(self):
        with pytest.raises(ValueError):
            CountryTargeting(frozenset())

    def test_required_precision(self):
        assert CountryTargeting.of("CN").required_precision == "country"


class TestAreaTargeting:
    def test_matches_tagged_area(self):
        t = AreaTargeting.of("cn-sh-01")
        assert t.matches(RequestGeo.of(area_ids=["cn-sh-01", "cn-sh-05"]))
        assert not t.matches(RequestGeo.of(area_ids=["cn-sh-02"]))

    def test_empty_request_areas(self):
        assert not AreaTargeting.of("a").matches(RequestGeo.of())

    def test_needs_areas(self):
        with pytest.raises(ValueError):
            AreaTargeting(frozenset())

    def test_required_precision(self):
        assert AreaTargeting.of("a").required_precision == "area"


class TestRadiusTargeting:
    def test_matches_within_radius(self):
        t = RadiusTargeting(Point(0, 0), radius_m=100.0)
        assert t.matches(RequestGeo.of(location=Point(99, 0)))
        assert not t.matches(RequestGeo.of(location=Point(101, 0)))

    def test_no_location_no_match(self):
        assert not RadiusTargeting(Point(0, 0), 100.0).matches(RequestGeo.of())

    def test_required_precision_is_full_location(self):
        """The paper's point: radius targeting needs the precise location."""
        assert RadiusTargeting(Point(0, 0), 100.0).required_precision == "location"

    def test_validation(self):
        with pytest.raises(ValueError):
            RadiusTargeting(Point(0, 0), 0.0)


class TestAreaRegistry:
    def test_areas_containing(self):
        registry = AreaRegistry([DOWNTOWN, SUBURB])
        assert registry.areas_containing(Point(50, 50)) == {"cn-sh-01"}
        assert registry.areas_containing(Point(200, 50)) == {"cn-sh-02"}
        assert registry.areas_containing(Point(1_000, 1_000)) == frozenset()

    def test_boundary_point_in_both(self):
        registry = AreaRegistry([DOWNTOWN, SUBURB])
        # (100, 50) is the shared edge of the two rectangles.
        assert registry.areas_containing(Point(100, 50)) == {"cn-sh-01", "cn-sh-02"}

    def test_duplicate_id_rejected(self):
        registry = AreaRegistry([DOWNTOWN])
        with pytest.raises(ValueError):
            registry.add(DOWNTOWN)

    def test_get_unknown(self):
        with pytest.raises(KeyError):
            AreaRegistry().get("nope")

    def test_coarse_attribute_derivation_hides_location(self):
        """The edge can answer area campaigns with only area ids."""
        registry = AreaRegistry([DOWNTOWN, SUBURB])
        true_location = Point(42.0, 17.0)
        geo = RequestGeo.of(area_ids=registry.areas_containing(true_location))
        assert AreaTargeting.of("cn-sh-01").matches(geo)
        assert geo.location is None  # the precise location never left
