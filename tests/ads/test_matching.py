"""Unit tests for the grid-bucketed campaign index."""

import numpy as np
import pytest

from repro.ads.campaign import Advertiser, Campaign
from repro.ads.matching import CampaignIndex
from repro.geo.point import Point


ADV = Advertiser("adv", "A")


def campaign(x, y, radius, cid=None):
    return Campaign(
        campaign_id=cid or f"c-{x}-{y}-{radius}",
        advertiser=ADV,
        business_location=Point(x, y),
        radius_m=radius,
    )


class TestCampaignIndex:
    def test_match_inside_radius(self):
        idx = CampaignIndex([campaign(0, 0, 1_000)])
        assert len(idx.match(Point(500, 0))) == 1
        assert idx.match(Point(2_000, 0)) == []

    def test_match_multiple_overlapping(self):
        idx = CampaignIndex(
            [campaign(0, 0, 5_000), campaign(3_000, 0, 5_000), campaign(50_000, 0, 1_000)]
        )
        matches = idx.match(Point(1_500, 0))
        assert len(matches) == 2

    def test_incremental_add_with_growing_radius_rebuilds(self):
        idx = CampaignIndex([campaign(0, 0, 100)])
        idx.add(campaign(0, 0, 10_000))
        # Both must still be matchable after the rebuild.
        assert len(idx.match(Point(50, 0))) == 2
        assert len(idx.match(Point(5_000, 0))) == 1

    def test_empty_index(self):
        assert CampaignIndex().match(Point(0, 0)) == []

    def test_matches_brute_force(self, rng):
        campaigns = [
            campaign(float(x), float(y), float(r), cid=f"c{i}")
            for i, (x, y, r) in enumerate(
                zip(
                    rng.uniform(-20_000, 20_000, 150),
                    rng.uniform(-20_000, 20_000, 150),
                    rng.uniform(500, 8_000, 150),
                )
            )
        ]
        idx = CampaignIndex(campaigns)
        for _ in range(30):
            q = Point(float(rng.uniform(-20_000, 20_000)), float(rng.uniform(-20_000, 20_000)))
            expected = {c.campaign_id for c in campaigns if c.targets(q)}
            got = {c.campaign_id for c in idx.match(q)}
            assert got == expected

    def test_len(self):
        idx = CampaignIndex([campaign(0, 0, 100), campaign(1, 1, 100, cid="x")])
        assert len(idx) == 2
