"""Unit tests for bid records and the bidding log."""

import numpy as np
import pytest

from repro.ads.bidding import BidLog, BidLogRecord, BidResponse
from repro.geo.point import Point


def record(device, x=0.0, y=0.0, t=0.0):
    return BidLogRecord(
        device_id=device,
        reported_location=Point(x, y),
        timestamp=t,
        matched_campaigns=0,
    )


class TestBidLog:
    def test_append_and_count(self):
        log = BidLog()
        log.append(record("a"))
        log.append(record("b"))
        assert len(log) == 2

    def test_devices(self):
        log = BidLog()
        log.append(record("a"))
        log.append(record("b"))
        log.append(record("a"))
        assert sorted(log.devices()) == ["a", "b"]

    def test_records_for_preserves_order(self):
        log = BidLog()
        log.append(record("a", t=1.0))
        log.append(record("b", t=2.0))
        log.append(record("a", t=3.0))
        recs = log.records_for("a")
        assert [r.timestamp for r in recs] == [1.0, 3.0]

    def test_records_for_unknown_device(self):
        assert BidLog().records_for("nope") == []

    def test_observations_array(self):
        log = BidLog()
        log.append(record("a", x=1.0, y=2.0))
        log.append(record("a", x=3.0, y=4.0))
        obs = log.observations_for("a")
        assert obs.tolist() == [[1.0, 2.0], [3.0, 4.0]]

    def test_observations_empty_device(self):
        assert BidLog().observations_for("nope").shape == (0, 2)

    def test_iteration(self):
        log = BidLog()
        log.append(record("a"))
        assert len(list(log)) == 1


class TestBidResponse:
    def test_filled_flag(self):
        assert not BidResponse("r", ads=()).filled
