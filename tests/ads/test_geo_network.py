"""Unit tests for mixed-category geo ad serving."""

import pytest

from repro.ads.campaign import Advertiser
from repro.ads.geo_network import GeoAdNetwork, GeoCampaign, build_request_geo
from repro.ads.targeting import (
    AdministrativeArea,
    AreaRegistry,
    AreaTargeting,
    CountryTargeting,
    RadiusTargeting,
    RequestGeo,
)
from repro.geo.point import Point
from repro.geo.polygon import Polygon


ADV = Advertiser("adv-1", "Shop")
DOWNTOWN = AdministrativeArea(
    "d1", "Downtown", Polygon.from_coords([(0, 0), (1_000, 0), (1_000, 1_000), (0, 1_000)])
)


def network_with_all_categories():
    net = GeoAdNetwork()
    net.register(GeoCampaign.create(ADV, CountryTargeting.of("CN"), bid_price=1.0))
    net.register(GeoCampaign.create(ADV, AreaTargeting.of("d1"), bid_price=2.0))
    net.register(
        GeoCampaign.create(ADV, RadiusTargeting(Point(500, 500), 200.0), bid_price=3.0)
    )
    return net


class TestGeoCampaign:
    def test_unique_ids(self):
        a = GeoCampaign.create(ADV, CountryTargeting.of("CN"))
        b = GeoCampaign.create(ADV, CountryTargeting.of("CN"))
        assert a.campaign_id != b.campaign_id

    def test_bid_validation(self):
        with pytest.raises(ValueError):
            GeoCampaign("x", ADV, CountryTargeting.of("CN"), bid_price=0.0)


class TestGeoAdNetwork:
    def test_match_per_category(self):
        net = network_with_all_categories()
        geo = RequestGeo.of(
            country="CN", area_ids=["d1"], location=Point(520, 510)
        )
        assert len(net.match(geo)) == 3

    def test_coarse_request_matches_only_coarse(self):
        net = network_with_all_categories()
        geo = RequestGeo.of(country="CN", area_ids=["d1"])  # no location
        matched = net.match(geo)
        assert len(matched) == 2
        assert all(c.targeting.required_precision != "location" for c in matched)

    def test_serve_ranks_by_bid(self):
        net = network_with_all_categories()
        geo = RequestGeo.of(country="CN", area_ids=["d1"], location=Point(500, 500))
        served = net.serve(geo)
        bids = [c.bid_price for c in served]
        assert bids == sorted(bids, reverse=True)

    def test_serve_caps_count(self):
        net = GeoAdNetwork(max_ads_per_request=1)
        net.register_all(
            [GeoCampaign.create(ADV, CountryTargeting.of("CN")) for _ in range(5)]
        )
        assert len(net.serve(RequestGeo.of(country="CN"))) == 1

    def test_precision_demand(self):
        net = network_with_all_categories()
        assert net.precision_demand() == {"country": 1, "area": 1, "location": 1}

    def test_validation(self):
        with pytest.raises(ValueError):
            GeoAdNetwork(max_ads_per_request=0)


class TestBuildRequestGeo:
    def test_coarse_attributes_from_true_location(self):
        registry = AreaRegistry([DOWNTOWN])
        true_loc = Point(100, 100)
        reported = Point(5_000, 5_000)  # obfuscated, outside downtown
        geo = build_request_geo(
            reported, country="CN", registry=registry, true_location=true_loc
        )
        # Coarse attributes reflect the TRUE location (coarse = safe)...
        assert geo.area_ids == {"d1"}
        assert geo.country == "CN"
        # ...while the precise field carries only the obfuscated report.
        assert geo.location == reported

    def test_no_registry_no_areas(self):
        geo = build_request_geo(Point(0, 0), country="CN")
        assert geo.area_ids == frozenset()

    def test_area_campaigns_still_match_despite_obfuscation(self):
        """Obfuscation does not cost utility for the coarse categories."""
        registry = AreaRegistry([DOWNTOWN])
        net = GeoAdNetwork()
        net.register(GeoCampaign.create(ADV, AreaTargeting.of("d1")))
        geo = build_request_geo(
            Point(90_000, 90_000),  # wildly obfuscated report
            registry=registry,
            true_location=Point(100, 100),
        )
        assert len(net.match(geo)) == 1
