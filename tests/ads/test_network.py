"""Unit tests for the ad network: matching, auction, logging."""

import pytest

from repro.ads.campaign import Advertiser, Campaign
from repro.ads.network import AdNetwork
from repro.geo.point import Point


def campaign(cid, x, bid, radius=5_000.0):
    return Campaign(
        campaign_id=cid,
        advertiser=Advertiser(f"adv-{cid}", cid),
        business_location=Point(x, 0),
        radius_m=radius,
        bid_price=bid,
    )


class TestAdNetwork:
    def test_request_ids_unique(self):
        net = AdNetwork()
        a = net.new_request("d", Point(0, 0), 0.0)
        b = net.new_request("d", Point(0, 0), 1.0)
        assert a.request_id != b.request_id

    def test_handle_matches_and_serves(self):
        net = AdNetwork()
        net.register_campaign(campaign("c1", 0, bid=2.0))
        resp = net.handle(net.new_request("d", Point(100, 0), 0.0))
        assert resp.filled
        assert resp.ads[0].campaign_id == "c1"

    def test_unmatched_request_unfilled_but_logged(self):
        net = AdNetwork()
        net.register_campaign(campaign("c1", 100_000, bid=2.0))
        resp = net.handle(net.new_request("d", Point(0, 0), 0.0))
        assert not resp.filled
        assert len(net.bid_log) == 1
        assert net.bid_log.records_for("d")[0].matched_campaigns == 0

    def test_log_records_reported_location(self):
        net = AdNetwork()
        net.handle(net.new_request("d", Point(12.0, 34.0), 5.0))
        rec = net.bid_log.records_for("d")[0]
        assert rec.reported_location == Point(12.0, 34.0)
        assert rec.timestamp == 5.0

    def test_auction_ranks_by_bid(self):
        net = AdNetwork(max_ads_per_request=2)
        net.register_campaigns(
            [campaign("low", 0, 1.0), campaign("high", 0, 5.0), campaign("mid", 0, 3.0)]
        )
        resp = net.handle(net.new_request("d", Point(0, 0), 0.0))
        assert [a.campaign_id for a in resp.ads] == ["high", "mid"]

    def test_second_price_payment(self):
        net = AdNetwork(max_ads_per_request=1)
        net.register_campaigns([campaign("a", 0, 5.0), campaign("b", 0, 3.0)])
        resp = net.handle(net.new_request("d", Point(0, 0), 0.0))
        assert resp.ads[0].price_paid == pytest.approx(3.0)

    def test_sole_bidder_pays_own_bid(self):
        net = AdNetwork(max_ads_per_request=1)
        net.register_campaign(campaign("a", 0, 5.0))
        resp = net.handle(net.new_request("d", Point(0, 0), 0.0))
        assert resp.ads[0].price_paid == pytest.approx(5.0)

    def test_max_ads_cap(self):
        net = AdNetwork(max_ads_per_request=3)
        net.register_campaigns([campaign(f"c{i}", 0, 1.0 + i) for i in range(10)])
        resp = net.handle(net.new_request("d", Point(0, 0), 0.0))
        assert len(resp.ads) == 3

    def test_bad_max_ads_raises(self):
        with pytest.raises(ValueError):
            AdNetwork(max_ads_per_request=0)
