"""Ablation bench: cross-device household linking vs the defense.

Runs the device-linking attack against a population of two-device users
under one-time geo-IND: the linker must correctly re-group each user's
devices from obfuscated traffic alone.  This is the ecosystem-level threat
behind the paper's multi-device integration requirement.
"""

import math

import numpy as np

from repro.attack.deobfuscation import DeobfuscationAttack
from repro.attack.linking import DeviceLinker, split_trace_across_devices
from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.mechanism import default_rng
from repro.datagen.obfuscate import one_time_obfuscate
from repro.datagen.population import PopulationConfig, iter_population
from repro.experiments.tables import ExperimentReport


def _run() -> ExperimentReport:
    users = list(iter_population(PopulationConfig(n_users=15, seed=77)))
    mechanism = PlanarLaplaceMechanism.from_level(
        math.log(2), 200.0, rng=default_rng(5)
    )
    rng = default_rng(6)

    observations = {}
    truth = {}
    for user in users:
        slices = split_trace_across_devices(user.trace, 2, rng)
        for d, sl in enumerate(slices):
            device_id = f"{user.user_id}-dev{d}"
            perturbed = one_time_obfuscate(sl, mechanism)
            observations[device_id] = np.array([(c.x, c.y) for c in perturbed])
            truth[device_id] = user.user_id

    linker = DeviceLinker(DeobfuscationAttack.against(mechanism), link_radius=300.0)
    links = linker.link(observations)

    # Score: a link group is correct when every member shares one owner.
    pure = sum(
        1 for l in links if len({truth[d] for d in l.device_ids}) == 1
    )
    paired = sum(1 for l in links if l.size >= 2)
    rows = [
        {
            "devices": len(observations),
            "link_groups": len(links),
            "pure_groups": pure,
            "correctly_paired_households": paired,
        }
    ]
    return ExperimentReport(
        experiment_id="ablation_linking",
        title="cross-device household linking vs one-time geo-IND",
        rows=rows,
        notes=[
            "each user carries two devices; the linker re-groups them from "
            "obfuscated traffic by co-located inferred top locations",
        ],
    )


def test_ablation_linking(benchmark, archive):
    report = benchmark.pedantic(_run, rounds=1, iterations=1)
    archive(report)
    row = report.rows[0]
    # Most households must be re-paired (homes are well separated in the
    # synthetic city, so linking is near-perfect under one-time geo-IND).
    assert row["correctly_paired_households"] >= 10
    assert row["pure_groups"] >= row["link_groups"] - 2
