"""Ablation bench: posterior vs uniform output selection (DESIGN.md #2).

Without the posterior module (uniform selection over the pinned
candidates), advertising efficacy collapses as n grows; with it, efficacy
plateaus — the mechanism behind the paper's Observation 4.
"""

from conftest import BENCH

from repro.experiments import fig9_efficacy
from repro.experiments.tables import ExperimentReport


def _run_both() -> ExperimentReport:
    post = fig9_efficacy.run(BENCH, ns=(1, 4, 10), selector_kind="posterior")
    unif = fig9_efficacy.run(BENCH, ns=(1, 4, 10), selector_kind="uniform")
    rows = []
    for p_row, u_row in zip(post.rows, unif.rows):
        rows.append(
            {
                "n": p_row["n"],
                "efficacy_posterior(r=500)": p_row["efficacy(r=500)"],
                "efficacy_uniform(r=500)": u_row["efficacy(r=500)"],
            }
        )
    return ExperimentReport(
        experiment_id="ablation_selection",
        title="efficacy with and without posterior output selection",
        rows=rows,
        notes=["paper: the output selection module is what keeps efficacy high"],
    )


def test_ablation_selection(benchmark, archive):
    report = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    archive(report)
    by_n = {r["n"]: r for r in report.rows}
    # At n=10 posterior selection clearly beats uniform.
    assert (
        by_n[10]["efficacy_posterior(r=500)"]
        > by_n[10]["efficacy_uniform(r=500)"] + 0.1
    )
    # Uniform decays substantially from n=1; posterior plateaus.
    assert by_n[10]["efficacy_uniform(r=500)"] < by_n[1]["efficacy_uniform(r=500)"] * 0.7
    assert by_n[10]["efficacy_posterior(r=500)"] > by_n[1]["efficacy_posterior(r=500)"] * 0.7
