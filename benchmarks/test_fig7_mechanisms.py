"""Bench: regenerate Figure 7 (utilization rate of the three mechanisms)."""

from conftest import BENCH

from repro.experiments import fig7_mechanisms


def _mean_ur(report, mechanism, n):
    for r in report.rows:
        if r["mechanism"] == mechanism and r["n"] == n:
            return r["mean_UR"]
    raise KeyError((mechanism, n))


def test_fig7_mechanisms(benchmark, archive):
    report = benchmark.pedantic(
        fig7_mechanisms.run, args=(BENCH,), rounds=1, iterations=1
    )
    archive(report)
    # Paper at n=10: n-fold ~100 %, naive ~58 %, composition ~20 %.
    nfold = _mean_ur(report, "n-fold gaussian", 10)
    naive = _mean_ur(report, "naive post-processing", 10)
    comp = _mean_ur(report, "plain composition", 10)
    assert nfold > 0.9
    assert nfold > naive > comp
    assert comp < 0.5
    # Observation 2: composition *loses* utility as n grows.
    assert comp < _mean_ur(report, "plain composition", 1)
    # Observation 3: n-fold gains utility as n grows.
    assert nfold > _mean_ur(report, "n-fold gaussian", 1)
