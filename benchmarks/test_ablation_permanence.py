"""Ablation bench: obfuscation-table permanence (DESIGN.md #5).

Compares the longitudinal attack's top-1 error when candidates are pinned
once (Edge-PrivLocAd) against a broken deployment that regenerates the
candidate set on every request.  Fresh randomness per request lets the
attacker's cluster mean converge back onto the true location — permanence
is the property that defeats the longitudinal attack, not the noise
magnitude alone.
"""

import numpy as np

from conftest import BENCH

from repro.attack.deobfuscation import DeobfuscationAttack
from repro.core.gaussian import GaussianMechanism, NFoldGaussianMechanism
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget
from repro.core.posterior import PosteriorSelector
from repro.datagen.obfuscate import permanent_obfuscate
from repro.datagen.population import PopulationConfig, iter_population
from repro.experiments.tables import ExperimentReport
from repro.profiles.checkin import CheckIn
from repro.profiles.frequent import eta_frequent_set
from repro.profiles.profile import LocationProfile


def _run() -> ExperimentReport:
    budget = GeoIndBudget(500.0, 1.0, 0.01, 10)
    rng = default_rng(55)
    mechanism = NFoldGaussianMechanism(budget, rng=rng)
    selector = PosteriorSelector(mechanism.posterior_sigma, rng=rng)
    users = list(iter_population(PopulationConfig(n_users=20, seed=BENCH.seed)))

    pinned_errors, fresh_errors = [], []
    for user in users:
        profile = LocationProfile.from_checkins(user.trace)
        tops = eta_frequent_set(profile, 0.8)

        pinned = permanent_obfuscate(user.trace, tops, mechanism, selector)
        attack = DeobfuscationAttack.against(mechanism)
        guess = attack.infer_top1(pinned)
        if guess is not None:
            pinned_errors.append(guess.distance_to(user.true_tops[0]))

        # Broken variant: new candidate set per request.
        fresh = [
            CheckIn(c.timestamp, selector.select(mechanism.obfuscate(c.point)))
            for c in user.trace
        ]
        # Fresh per-request noise behaves like a 1-fold release stream.
        attack_fresh = DeobfuscationAttack.against(
            GaussianMechanism(budget.with_n(1), rng=default_rng(0))
        )
        guess = attack_fresh.infer_top1(fresh)
        if guess is not None:
            fresh_errors.append(guess.distance_to(user.true_tops[0]))

    rows = [
        {
            "deployment": "pinned candidates (Edge-PrivLocAd)",
            "median_top1_error_m": float(np.median(pinned_errors)),
            "within_500m": float((np.asarray(pinned_errors) <= 500).mean()),
        },
        {
            "deployment": "fresh candidates per request (broken)",
            "median_top1_error_m": float(np.median(fresh_errors)),
            "within_500m": float((np.asarray(fresh_errors) <= 500).mean()),
        },
    ]
    return ExperimentReport(
        experiment_id="ablation_permanence",
        title="attack error: pinned vs per-request regenerated candidates",
        rows=rows,
        notes=["permanence of the obfuscation table is the load-bearing design choice"],
    )


def test_ablation_permanence(benchmark, archive):
    report = benchmark.pedantic(_run, rounds=1, iterations=1)
    archive(report)
    pinned, fresh = report.rows
    # The broken deployment is dramatically easier to attack.
    assert fresh["median_top1_error_m"] < pinned["median_top1_error_m"] / 2
    assert fresh["within_500m"] > pinned["within_500m"]
