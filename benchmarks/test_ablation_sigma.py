"""Ablation bench: sufficient-statistic calibration vs plain composition.

DESIGN.md ablation #1 — the core analytic claim of Theorem 2: for the
same (r, eps, delta, n) target, the sufficient-statistic proof needs a
noise scale that is smaller by a factor growing like sqrt(n) (and beyond,
since composition also splits delta).
"""

import math

from repro.core.accounting import composition_vs_sufficient_statistic
from repro.experiments.tables import ExperimentReport


def _build_report() -> ExperimentReport:
    rows = []
    for n in (1, 2, 4, 6, 8, 10, 16):
        cmp_ = composition_vs_sufficient_statistic(500.0, 1.0, 0.01, n)
        rows.append(
            {
                "n": n,
                "sigma_sufficient": cmp_.sigma_sufficient_statistic,
                "sigma_composition": cmp_.sigma_plain_composition,
                "saving_factor": cmp_.saving_factor,
            }
        )
    return ExperimentReport(
        experiment_id="ablation_sigma",
        title="noise scale: sufficient statistic vs plain composition",
        rows=rows,
        notes=["Theorem 2: the saving factor grows at least like sqrt(n)"],
    )


def test_ablation_sigma(benchmark, archive):
    report = benchmark(_build_report)
    archive(report)
    savings = {r["n"]: r["saving_factor"] for r in report.rows}
    assert savings[1] == 1.0
    for n in (2, 4, 6, 8, 10, 16):
        assert savings[n] >= math.sqrt(n)
    # Strictly increasing in n.
    ordered = [savings[n] for n in (1, 2, 4, 6, 8, 10, 16)]
    assert ordered == sorted(ordered)
