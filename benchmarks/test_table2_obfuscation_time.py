"""Bench: regenerate Table II (obfuscation processing time vs user count).

The paper's reproduced claim is the near-linear scaling shape, not the
absolute Raspberry Pi 3 numbers; the bench reports doubling ratios and
asserts they stay close to 2.
"""

from conftest import BENCH

from repro.experiments import table2_obfuscation_time


def test_table2_obfuscation_time(benchmark, archive):
    report = benchmark.pedantic(
        table2_obfuscation_time.run,
        args=(BENCH,),
        kwargs={"sizes": (100, 200, 400, 800), "pool_size": 30, "workers": 4},
        rounds=1,
        iterations=1,
    )
    archive(report)
    seconds = [r["seconds"] for r in report.rows]
    # Monotone growth in workload size.
    assert seconds == sorted(seconds)
    # Near-linear scaling: each doubling costs ~2x (generous envelope to
    # tolerate scheduler noise at small sizes).
    for a, b in zip(seconds, seconds[1:]):
        assert 1.3 <= b / a <= 3.2
