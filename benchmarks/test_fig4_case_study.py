"""Bench: regenerate Figure 4 (de-obfuscation case study over time windows)."""

from repro.experiments import fig4_case_study


def test_fig4_case_study(benchmark, archive):
    report = benchmark.pedantic(fig4_case_study.run, rounds=3, iterations=1)
    archive(report)
    errors = {r["window"]: r["inference_error_m"] for r in report.rows}
    # Paper: ~200 m after one week, < 50 m after the full year.
    assert errors["full year"] < errors["one week"]
    assert errors["full year"] < 100.0
