"""Ablation bench: the attack's TRIMMING stage (DESIGN.md #3).

Runs the de-obfuscation attack with and without the trimming refinement
against one-time geo-IND traces.  Trimming should reduce the top-1
inference error on average — it is what makes Algorithm 1 accurate when
perturbation clouds from different true locations overlap.
"""

import math

import numpy as np

from conftest import BENCH

from repro.attack.deobfuscation import DeobfuscationAttack
from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.mechanism import default_rng
from repro.datagen.obfuscate import one_time_obfuscate
from repro.datagen.population import PopulationConfig, iter_population
from repro.experiments.tables import ExperimentReport


def _run() -> ExperimentReport:
    users = list(
        iter_population(PopulationConfig(n_users=BENCH.n_users, seed=BENCH.seed))
    )
    mechanism = PlanarLaplaceMechanism.from_level(
        math.log(2), 200.0, rng=default_rng(77)
    )
    with_trim = DeobfuscationAttack.against(mechanism, use_trimming=True)
    without_trim = DeobfuscationAttack.against(mechanism, use_trimming=False)
    errors = {"with trimming": [], "without trimming": []}
    for user in users:
        observed = one_time_obfuscate(user.trace, mechanism)
        coords = np.array([(c.x, c.y) for c in observed])
        for label, attack in (
            ("with trimming", with_trim),
            ("without trimming", without_trim),
        ):
            guess = attack.infer_top1(coords)
            err = (
                guess.distance_to(user.true_tops[0])
                if guess is not None
                else float("inf")
            )
            errors[label].append(err)
    rows = []
    for label, errs in errors.items():
        arr = np.asarray(errs)
        rows.append(
            {
                "variant": label,
                "median_error_m": float(np.median(arr)),
                "mean_error_m": float(arr[np.isfinite(arr)].mean()),
                "within_200m": float((arr <= 200.0).mean()),
            }
        )
    return ExperimentReport(
        experiment_id="ablation_attack_trimming",
        title="top-1 attack accuracy with and without TRIMMING",
        rows=rows,
        notes=["Algorithm 1's refinement stage tightens the recovered centroid"],
    )


def test_ablation_attack_trimming(benchmark, archive):
    report = benchmark.pedantic(_run, rounds=1, iterations=1)
    archive(report)
    by_variant = {r["variant"]: r for r in report.rows}
    trimmed = by_variant["with trimming"]
    raw = by_variant["without trimming"]
    # Trimming must not hurt, and typically helps, accuracy.
    assert trimmed["median_error_m"] <= raw["median_error_m"] * 1.05
    assert trimmed["within_200m"] >= raw["within_200m"] - 0.05
