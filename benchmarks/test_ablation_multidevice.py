"""Ablation bench: multi-device users need *integrated* obfuscation.

The paper's second role for the edge (Section V-A): "for users with
multiple mobile devices, the edge devices can provide an integrated
obfuscation to prevent the degradation of privacy level further."  This
bench quantifies that claim: a user with k devices whose reports an
attacker can link (same household/ad identifiers) either

* shares ONE pinned candidate set across devices (integrated — what
  Edge-PrivLocAd's per-user, not per-device, obfuscation table provides), or
* lets each device pin its OWN candidate set (broken integration).

With k independent sets the attacker effectively observes k*n fresh
Gaussian draws of the same top location; their joint mean concentrates as
sigma/sqrt(k*n), degrading privacy as k grows.
"""

import numpy as np

from repro.core.gaussian import NFoldGaussianMechanism
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget
from repro.experiments.tables import ExperimentReport
from repro.geo.point import Point

BUDGET = GeoIndBudget(r=500.0, epsilon=1.0, delta=0.01, n=10)
DEVICE_COUNTS = (1, 2, 4, 8)
TRIALS = 300
HOME = Point(0.0, 0.0)


def _mean_error(k_devices: int, integrated: bool, seed: int) -> float:
    """Attacker's error from the joint candidate mean across devices."""
    rng = default_rng(seed)
    mechanism = NFoldGaussianMechanism(BUDGET, rng=rng)
    errors = np.empty(TRIALS)
    for t in range(TRIALS):
        if integrated:
            sets = [mechanism.obfuscate(HOME)] * k_devices  # one shared set
        else:
            sets = [mechanism.obfuscate(HOME) for _ in range(k_devices)]
        points = np.array([(p.x, p.y) for s in sets for p in s])
        # The linking attacker's sufficient statistic: the joint mean of
        # every candidate it ever observes for this user.
        mean = points.mean(axis=0)
        errors[t] = np.hypot(*mean)
    return float(errors.mean())


def _run() -> ExperimentReport:
    rows = []
    for k in DEVICE_COUNTS:
        rows.append(
            {
                "devices": k,
                "integrated_mean_error_m": _mean_error(k, True, seed=10 + k),
                "independent_mean_error_m": _mean_error(k, False, seed=20 + k),
            }
        )
    return ExperimentReport(
        experiment_id="ablation_multidevice",
        title="multi-device users: integrated vs per-device obfuscation",
        rows=rows,
        notes=[
            "integrated: privacy independent of device count; independent "
            "tables: attacker mean concentrates as sigma/sqrt(k*n)",
        ],
    )


def test_ablation_multidevice(benchmark, archive):
    report = benchmark.pedantic(_run, rounds=1, iterations=1)
    archive(report)
    rows = {r["devices"]: r for r in report.rows}
    # Integrated privacy does not depend on the device count (same
    # distribution; allow Monte-Carlo noise).
    ratio = (
        rows[8]["integrated_mean_error_m"] / rows[1]["integrated_mean_error_m"]
    )
    assert 0.85 <= ratio <= 1.15
    # Independent tables degrade: error shrinks roughly as 1/sqrt(k).
    assert (
        rows[8]["independent_mean_error_m"]
        < rows[1]["independent_mean_error_m"] / 2
    )
