"""Ablation bench: the naive baseline's unspecified scatter radius.

The paper's naive post-processing baseline samples its n candidates "in a
certain radius" around the single obfuscated location but never fixes that
radius.  This bench sweeps the choice and documents an honest subtlety:
with a very wide scatter the baseline can match the n-fold mechanism's
*utilization rate* (blanketing the map reaches every advertiser) — but
only by collapsing *efficacy*, because the blanket AOR is mostly
irrelevant.  The n-fold mechanism is the only one strong on both metrics,
which is the real content of the paper's Figure 7 + Figure 9 pair.
"""

import numpy as np

from conftest import BENCH

from repro.core.baselines import NaivePostProcessingMechanism
from repro.core.gaussian import NFoldGaussianMechanism
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget
from repro.core.posterior import PosteriorSelector, UniformSelector
from repro.experiments.tables import ExperimentReport
from repro.metrics.efficacy import efficacy_samples
from repro.metrics.utilization import utilization_samples

BUDGET = GeoIndBudget(r=500.0, epsilon=1.0, delta=0.01, n=10)
#: Scatter radius as a multiple of the 1-fold sigma (~1.6 km).
SCATTER_FACTORS = (0.25, 0.5, 1.0, 2.0, 4.0)
TRIALS = max(200, BENCH.trials // 4)


def _mean_ur(mechanism, seed: int) -> float:
    rng = default_rng(seed)
    samples = utilization_samples(
        mechanism, trials=TRIALS, mc_samples=BENCH.mc_samples, rng=rng
    )
    return float(samples.mean())


def _mean_ae(mechanism, selector, seed: int) -> float:
    rng = default_rng(seed)
    samples = efficacy_samples(mechanism, selector, trials=TRIALS, rng=rng)
    return float(samples.mean())


def _run() -> ExperimentReport:
    rows = []
    nfold = NFoldGaussianMechanism(BUDGET, rng=default_rng(1))
    nfold_ur = _mean_ur(nfold, seed=2)
    nfold_ae = _mean_ae(
        NFoldGaussianMechanism(BUDGET, rng=default_rng(1)),
        PosteriorSelector(nfold.posterior_sigma, rng=default_rng(2)),
        seed=3,
    )
    base_sigma = NaivePostProcessingMechanism(BUDGET).sigma
    for factor in SCATTER_FACTORS:
        mech_ur = NaivePostProcessingMechanism(
            BUDGET, scatter_radius=factor * base_sigma, rng=default_rng(4)
        )
        mech_ae = NaivePostProcessingMechanism(
            BUDGET, scatter_radius=factor * base_sigma, rng=default_rng(4)
        )
        rows.append(
            {
                "scatter_radius_x_sigma": factor,
                "naive_mean_UR": _mean_ur(mech_ur, seed=5),
                "naive_mean_AE": _mean_ae(
                    mech_ae, UniformSelector(rng=default_rng(5)), seed=6
                ),
                "nfold_mean_UR": nfold_ur,
                "nfold_mean_AE": nfold_ae,
            }
        )
    return ExperimentReport(
        experiment_id="ablation_scatter",
        title="naive post-processing vs scatter radius (n=10): UR and AE",
        rows=rows,
        notes=[
            "wide scatter buys UR by blanketing the map, at the cost of "
            "efficacy; only the n-fold mechanism is strong on both",
        ],
    )


def test_ablation_scatter(benchmark, archive):
    report = benchmark.pedantic(_run, rounds=1, iterations=1)
    archive(report)
    nfold_ur = report.rows[0]["nfold_mean_UR"]
    nfold_ae = report.rows[0]["nfold_mean_AE"]
    for row in report.rows:
        # No scatter radius beats the n-fold mechanism on BOTH metrics.
        beats_both = (
            row["naive_mean_UR"] >= nfold_ur
            and row["naive_mean_AE"] >= nfold_ae
        )
        assert not beats_both
    # The radius choice matters (documents why ours is pinned in DESIGN.md).
    urs = [r["naive_mean_UR"] for r in report.rows]
    assert max(urs) - min(urs) > 0.03
