"""Bench: regenerate Figure 2 (single-user 7-day mobility pattern)."""

from repro.experiments import fig2_mobility


def test_fig2_mobility(benchmark, archive):
    report = benchmark.pedantic(fig2_mobility.run, rounds=3, iterations=1)
    archive(report)
    shares = [r["share"] for r in report.rows]
    # Paper: top-1 and top-2 (home/office) dominate the week.
    assert shares[0] + shares[1] > 0.8
    # The recovered cluster centroids sit on the true anchors.
    assert report.rows[0]["dist_to_true_anchor_m"] < 25.0
