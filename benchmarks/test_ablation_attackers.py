"""Ablation bench: attacker variants against one-time geo-IND.

Compares three longitudinal attackers on the same perturbed population:

* the paper's Algorithm 1 (connectivity clustering + trimming),
* a k-means baseline (k-means++ / Lloyd, largest-cluster centroid), and
* the temporal (semantic) refinement that clusters only night-time
  observations to find *home*.

Algorithm 1 should dominate the naive k-means baseline, supporting the
paper's design; the temporal attacker shows semantics leak even from the
time dimension alone.
"""

import math

import numpy as np

from conftest import BENCH

from repro.attack.deobfuscation import DeobfuscationAttack
from repro.attack.kmeans import KMeansAttack
from repro.attack.temporal import TemporalAttack
from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.mechanism import default_rng
from repro.datagen.obfuscate import one_time_obfuscate
from repro.datagen.population import PopulationConfig, iter_population
from repro.experiments.tables import ExperimentReport


def _run() -> ExperimentReport:
    users = list(
        iter_population(PopulationConfig(n_users=30, seed=BENCH.seed))
    )
    mechanism = PlanarLaplaceMechanism.from_level(
        math.log(2), 200.0, rng=default_rng(123)
    )
    alg1 = DeobfuscationAttack.against(mechanism)
    km = KMeansAttack(k=8, rng=default_rng(7))
    temporal = TemporalAttack(alg1)

    errors = {"algorithm 1 (paper)": [], "k-means baseline": [], "temporal (home)": []}
    for user in users:
        observed = one_time_obfuscate(user.trace, mechanism)
        coords = np.array([(c.x, c.y) for c in observed])
        home = user.true_tops[0]

        tops = alg1.estimate_xy(coords, 1)
        errors["algorithm 1 (paper)"].append(
            tops[0].distance_to(home) if tops else float("inf")
        )
        tops = km.estimate_xy(coords, 1)
        errors["k-means baseline"].append(
            tops[0].distance_to(home) if tops else float("inf")
        )
        guess = temporal.infer_home(observed)
        errors["temporal (home)"].append(
            guess.distance_to(home) if guess else float("inf")
        )

    rows = []
    for name, errs in errors.items():
        arr = np.asarray(errs)
        finite = arr[np.isfinite(arr)]
        rows.append(
            {
                "attacker": name,
                "median_error_m": float(np.median(arr)),
                "mean_error_m": float(finite.mean()),
                "within_200m": float((arr <= 200.0).mean()),
            }
        )
    return ExperimentReport(
        experiment_id="ablation_attackers",
        title="attacker variants vs one-time geo-IND (l=ln2 @ 200 m)",
        rows=rows,
        notes=[
            "Algorithm 1's clustering+trimming should beat generic k-means; "
            "the temporal attacker recovers *labelled* semantics (home)",
        ],
    )


def test_ablation_attackers(benchmark, archive):
    report = benchmark.pedantic(_run, rounds=1, iterations=1)
    archive(report)
    by_name = {r["attacker"]: r for r in report.rows}
    alg1 = by_name["algorithm 1 (paper)"]
    km = by_name["k-means baseline"]
    temporal = by_name["temporal (home)"]
    # The paper's attack dominates the naive baseline.
    assert alg1["within_200m"] >= km["within_200m"]
    assert alg1["median_error_m"] <= km["median_error_m"] * 1.1
    # The semantic attacker still works well (it sees fewer points).
    assert temporal["within_200m"] >= 0.5
