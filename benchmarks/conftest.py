"""Shared infrastructure for the reproduction benchmarks.

Every bench regenerates one of the paper's tables/figures via its
experiment driver, times it with pytest-benchmark, prints the rendered
report, and archives it under ``benchmarks/results/`` so the numbers are
inspectable after a quiet pytest run.  Alongside the human-readable
``<id>.txt`` archive, each report also lands as machine-readable
``BENCH_<id>.json`` carrying the wall-clock seconds, the worker count,
the scale, and any per-stage timings the driver surfaced via
``ExperimentReport.meta``.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

import pytest

from repro.experiments.config import ExperimentScale
from repro.experiments.tables import ExperimentReport

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Bench scale: big enough for stable shapes, small enough for minutes.
BENCH = ExperimentScale(name="bench", trials=800, n_users=50, mc_samples=768)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def _benchmark_wall_seconds(request) -> float:
    """Wall-clock of the benchmarked call, when the test timed one."""
    if "benchmark" not in request.fixturenames:
        return float("nan")
    stats = getattr(request.getfixturevalue("benchmark"), "stats", None)
    stats = getattr(stats, "stats", stats)
    mean = getattr(stats, "mean", None)
    return float(mean) if mean is not None else float("nan")


@pytest.fixture
def archive(results_dir, request):
    """Print a report and persist it to benchmarks/results/<id>.{txt,json}."""

    def _archive(report: ExperimentReport) -> ExperimentReport:
        text = report.render()
        print("\n" + text)
        (results_dir / f"{report.experiment_id}.txt").write_text(text + "\n")
        payload = {
            "experiment_id": report.experiment_id,
            "title": report.title,
            "wall_seconds": _benchmark_wall_seconds(request),
            "workers": report.meta.get("workers"),
            "scale": dataclasses.asdict(BENCH),
            "stage_seconds": report.meta.get("stage_seconds", {}),
            "rows": report.rows,
            "notes": report.notes,
        }
        (results_dir / f"BENCH_{report.experiment_id}.json").write_text(
            json.dumps(payload, indent=2, default=str) + "\n"
        )
        return report

    return _archive
