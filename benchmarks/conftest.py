"""Shared infrastructure for the reproduction benchmarks.

Every bench regenerates one of the paper's tables/figures via its
experiment driver, times it with pytest-benchmark, prints the rendered
report, and archives it under ``benchmarks/results/`` so the numbers are
inspectable after a quiet pytest run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.config import ExperimentScale
from repro.experiments.tables import ExperimentReport

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Bench scale: big enough for stable shapes, small enough for minutes.
BENCH = ExperimentScale(name="bench", trials=800, n_users=50, mc_samples=768)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def archive(results_dir):
    """Print a report and persist it to benchmarks/results/<id>.txt."""

    def _archive(report: ExperimentReport) -> ExperimentReport:
        text = report.render()
        print("\n" + text)
        (results_dir / f"{report.experiment_id}.txt").write_text(text + "\n")
        return report

    return _archive
