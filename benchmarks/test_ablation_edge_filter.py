"""Ablation bench: edge-side AOI ad filtering (DESIGN.md #4).

Measures the bandwidth the edge saves the device: the share of
network-returned ads that are irrelevant to the user's true area of
interest and get dropped at the edge.  Without the filter all of them
would reach the phone.
"""

import numpy as np

from repro.datagen.population import PopulationConfig, generate_population
from repro.datagen.shanghai import shanghai_planar_bbox
from repro.edge.system import EdgePrivLocAdSystem, SystemConfig, seed_campaigns
from repro.experiments.tables import ExperimentReport


def _run() -> ExperimentReport:
    users = generate_population(PopulationConfig(n_users=10, seed=31))
    system = EdgePrivLocAdSystem(SystemConfig(n_edge_devices=2))
    rng = np.random.default_rng(8)
    system.register_campaigns(
        seed_campaigns(shanghai_planar_bbox(), 300, 5_000.0, rng)
    )
    report = system.run(users)
    rows = [
        {
            "requests": report.requests,
            "ads_from_network": report.ads_received,
            "ads_delivered": report.ads_delivered,
            "filtered_out": report.ads_received - report.ads_delivered,
            "relevance_ratio": report.relevance_ratio,
        }
    ]
    return ExperimentReport(
        experiment_id="ablation_edge_filter",
        title="bandwidth saved by edge-side AOI filtering",
        rows=rows,
        notes=[
            "without the edge filter, every irrelevant ad would reach the "
            "device (paper Section V-A, third edge role)",
        ],
    )


def test_ablation_edge_filter(benchmark, archive):
    report = benchmark.pedantic(_run, rounds=1, iterations=1)
    archive(report)
    row = report.rows[0]
    # Obfuscation necessarily retrieves some irrelevant ads...
    assert row["filtered_out"] > 0
    # ...but a solid share of traffic remains relevant.
    assert 0.2 <= row["relevance_ratio"] <= 1.0
