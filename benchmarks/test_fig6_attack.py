"""Bench: regenerate Figure 6 (attack success, one-time vs Edge-PrivLocAd).

This is the paper's headline result: one-time geo-IND deployments leak
75-93 % of top-1 locations within 200 m, while the permanent 10-fold
Gaussian defense leaks <1 % (and <=6.8 % within 500 m).
"""

from conftest import BENCH

from repro.experiments import fig6_attack


def test_fig6_attack(benchmark, archive):
    report = benchmark.pedantic(
        fig6_attack.run, args=(BENCH,), rounds=1, iterations=1
    )
    archive(report)
    onetime = [r for r in report.rows if r["mechanism"] == "one-time geo-IND"]
    defended = [r for r in report.rows if "10-fold" in r["mechanism"]]
    # Paper shape: one-time overwhelmingly broken, defense holds.
    assert all(r["top1_within_200m"] >= 0.6 for r in onetime)
    assert all(r["top1_within_200m"] <= 0.1 for r in defended)
    assert all(r["top1_within_500m"] <= 0.25 for r in defended)
    # Ordering between the privacy levels (looser level, easier attack).
    ln2 = next(r for r in onetime if "ln(2)" in r["parameter"])
    ln6 = next(r for r in onetime if "ln(6)" in r["parameter"])
    assert ln6["top1_within_200m"] >= ln2["top1_within_200m"] - 0.1
