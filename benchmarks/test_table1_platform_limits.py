"""Bench: regenerate Table I (platform targeting limits)."""

from repro.experiments import table1_limits


def test_table1_platform_limits(benchmark, archive):
    report = benchmark(table1_limits.run)
    archive(report)
    assert len(report.rows) == 4
    # The derived common interval drives the paper's R = 5 km choice.
    assert any("5 km" in note for note in report.notes)
