"""Micro-benchmarks of the hot code paths.

Not tied to a paper table; these track the throughput of the primitives
the system-level numbers are built from (obfuscation, clustering,
selection, matching), so regressions are attributable.
"""

import numpy as np

from repro.ads.campaign import Advertiser, Campaign
from repro.ads.matching import CampaignIndex
from repro.core.gaussian import NFoldGaussianMechanism
from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget, OneTimeBudget
from repro.core.posterior import PosteriorSelector
from repro.geo.index import connected_components
from repro.geo.point import Point


def test_nfold_obfuscate(benchmark):
    mech = NFoldGaussianMechanism(
        GeoIndBudget(500.0, 1.0, 0.01, 10), rng=default_rng(0)
    )
    benchmark(mech.obfuscate, Point(0.0, 0.0))


def test_laplace_batch_obfuscate_10k(benchmark):
    mech = PlanarLaplaceMechanism(OneTimeBudget(0.005), rng=default_rng(0))
    coords = np.zeros((10_000, 2))
    benchmark(mech.obfuscate_batch, coords)


def test_connectivity_clustering_5k_points(benchmark):
    rng = default_rng(1)
    blob = rng.normal(0, 50, (4_000, 2))
    scatter = rng.uniform(-20_000, 20_000, (1_000, 2))
    pts = np.vstack([blob, scatter])
    benchmark(connected_components, pts, 100.0)


def test_posterior_selection(benchmark):
    mech = NFoldGaussianMechanism(
        GeoIndBudget(500.0, 1.0, 0.01, 10), rng=default_rng(2)
    )
    selector = PosteriorSelector(mech.posterior_sigma, rng=default_rng(3))
    candidates = mech.obfuscate(Point(0.0, 0.0))
    benchmark(selector.select, candidates)


def test_campaign_matching_1k_campaigns(benchmark):
    rng = default_rng(4)
    campaigns = [
        Campaign(
            campaign_id=f"c{i}",
            advertiser=Advertiser(f"a{i}"),
            business_location=Point(float(x), float(y)),
            radius_m=5_000.0,
        )
        for i, (x, y) in enumerate(rng.uniform(-40_000, 40_000, (1_000, 2)))
    ]
    index = CampaignIndex(campaigns)
    benchmark(index.match, Point(0.0, 0.0))
