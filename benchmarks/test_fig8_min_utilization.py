"""Bench: regenerate Figure 8 (minimal utilization rate at alpha = 0.9)."""

from conftest import BENCH

from repro.experiments import fig8_min_utilization


def test_fig8_min_utilization(benchmark, archive):
    report = benchmark.pedantic(
        fig8_min_utilization.run, args=(BENCH,), rounds=1, iterations=1
    )
    archive(report)
    rows_eps15 = [r for r in report.rows if r["epsilon"] == 1.5]
    curve = {r["n"]: r["min_UR(r=500)"] for r in rows_eps15}
    # Paper: eps=1.5 goes from ~0.6 (n=1) to ~0.9 (n=10).
    assert curve[1] < 0.8
    assert curve[10] > 0.8
    # Paper: eps=1 improves by ~60 % from n=1 to n=10.
    rows_eps1 = [r for r in report.rows if r["epsilon"] == 1.0]
    curve1 = {r["n"]: r["min_UR(r=500)"] for r in rows_eps1}
    assert curve1[10] >= curve1[1] * 1.3
    # Tighter privacy radius r hurts utility at fixed n.
    r10 = next(r for r in rows_eps1 if r["n"] == 10)
    assert r10["min_UR(r=500)"] >= r10["min_UR(r=800)"] - 0.05
