"""Micro-benchmarks for the extension modules."""

import numpy as np

from repro.attack.kmeans import kmeans
from repro.core.mechanism import default_rng
from repro.core.remap import BayesianRemap, LocationPrior, gaussian_noise_loglik
from repro.edge.secure_merge import GridSpec, share_histogram
from repro.geo.point import Point
from repro.profiles.checkin import CheckIn


def test_bayesian_remap(benchmark):
    prior = LocationPrior.uniform_grid(Point(0, 0), half_extent=5_000.0, step=250.0)
    remap = BayesianRemap(prior, gaussian_noise_loglik(1_500.0))
    benchmark(remap.remap, Point(800.0, -400.0))


def test_kmeans_2k_points(benchmark):
    rng = default_rng(0)
    pts = np.vstack(
        [rng.normal(0, 50, (1_500, 2)), rng.normal(5_000, 50, (500, 2))]
    )
    benchmark(kmeans, pts, 6, default_rng(1))


def test_secret_share_histogram(benchmark):
    rng = default_rng(2)
    counts = rng.integers(0, 10_000, size=10_000).astype(np.int64)
    benchmark(share_histogram, counts, 3, rng)


def test_grid_histogram_10k_checkins(benchmark):
    grid = GridSpec(-50_000.0, -50_000.0, 100.0, 1_000, 1_000)
    rng = default_rng(3)
    checkins = [
        CheckIn(float(i), Point(float(x), float(y)))
        for i, (x, y) in enumerate(rng.uniform(-40_000, 40_000, (10_000, 2)))
    ]
    benchmark(grid.histogram, checkins)
