"""Bench: regenerate Table III (output-selection time vs user count).

The paper reports milliseconds-scale, near-linear per-tick selection cost
for 2,000..32,000 users on a Pi 3; we run the identical sizes on this host.
"""

from conftest import BENCH

from repro.experiments import table3_selection_time


def test_table3_selection_time(benchmark, archive):
    report = benchmark.pedantic(
        table3_selection_time.run, args=(BENCH,), rounds=1, iterations=1
    )
    archive(report)
    ms = [r["milliseconds"] for r in report.rows]
    users = [r["users"] for r in report.rows]
    assert users == [2_000, 4_000, 8_000, 16_000, 32_000]
    # Near-linear shape.
    assert ms == sorted(ms)
    for a, b in zip(ms, ms[1:]):
        assert 1.2 <= b / a <= 3.5
