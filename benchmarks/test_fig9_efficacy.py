"""Bench: regenerate Figure 9 (advertising efficacy vs n under various r)."""

from conftest import BENCH

from repro.experiments import fig9_efficacy


def test_fig9_efficacy(benchmark, archive):
    report = benchmark.pedantic(
        fig9_efficacy.run, args=(BENCH,), rounds=1, iterations=1
    )
    archive(report)
    by_n = {r["n"]: r for r in report.rows}
    # Paper Observation 4: with posterior output selection, efficacy does
    # not significantly decrease as n grows (compare n=2..10 plateau).
    assert by_n[10]["efficacy(r=500)"] > by_n[2]["efficacy(r=500)"] * 0.8
    # Larger privacy radius lowers efficacy at fixed n.
    assert by_n[10]["efficacy(r=500)"] >= by_n[10]["efficacy(r=800)"] - 0.02
