"""Ablation bench: Bayesian remapping — utility up, longitudinal privacy down.

The related-work remapping post-processors (Bordenabe'14, Chatzikokolakis
'17) reduce per-report expected error without privacy cost.  This bench
reproduces both sides of that coin for the longitudinal setting the paper
studies:

1. remapping reduces expected distance loss (its design goal), and
2. remapping makes the *longitudinal* attack easier — each remapped report
   is pulled toward high-prior cells, so the attacker's cluster converges
   faster.  Post-processing cannot fix longitudinal exposure; only the
   permanent n-fold release does.
"""

import math

import numpy as np

from repro.attack.deobfuscation import DeobfuscationAttack
from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.mechanism import default_rng
from repro.core.remap import BayesianRemap, LocationPrior, planar_laplace_noise_loglik
from repro.datagen.casestudy import make_fig4_user
from repro.datagen.obfuscate import one_time_obfuscate
from repro.experiments.tables import ExperimentReport
from repro.geo.point import Point
from repro.profiles.checkin import CheckIn


def _run() -> ExperimentReport:
    user = make_fig4_user()
    home = user.true_tops[0]
    level = math.log(2)
    mechanism = PlanarLaplaceMechanism.from_level(level, 200.0, rng=default_rng(3))
    observed = one_time_obfuscate(user.trace, mechanism)

    # Remapper prior: public knowledge that the victim's reports originate
    # from a ~1.5 km POI neighbourhood (the setting where remapping shines:
    # it truncates the Laplace tail back onto the plausible region).
    prior = LocationPrior.uniform_grid(home, half_extent=1_500.0, step=150.0)
    remap = BayesianRemap(prior, planar_laplace_noise_loglik(mechanism.epsilon))
    remapped = [CheckIn(c.timestamp, remap.remap(c.point)) for c in observed]

    # Per-report utility (only top-1 visits, where the prior is informative).
    top1_reports = [c for c in user.trace if c.point.distance_to(home) < 100.0]
    idx = [i for i, c in enumerate(user.trace) if c.point.distance_to(home) < 100.0]
    raw_err = float(
        np.mean([observed[i].point.distance_to(home) for i in idx])
    )
    remap_err = float(
        np.mean([remapped[i].point.distance_to(home) for i in idx])
    )

    # Longitudinal attack on both streams.
    attack = DeobfuscationAttack.against(mechanism)
    raw_guess = attack.infer_top1(observed)
    # Remapped outputs live on the prior grid — cluster at grid scale.
    remap_attack = DeobfuscationAttack(theta=750.0, r_alpha=1_500.0)
    remap_guess = remap_attack.infer_top1(remapped)

    rows = [
        {
            "stream": "raw one-time geo-IND",
            "mean_report_error_m": raw_err,
            "attack_top1_error_m": raw_guess.distance_to(home),
        },
        {
            "stream": "with Bayesian remapping",
            "mean_report_error_m": remap_err,
            "attack_top1_error_m": remap_guess.distance_to(home),
        },
    ]
    return ExperimentReport(
        experiment_id="ablation_remap",
        title="Bayesian remapping: per-report utility vs longitudinal exposure",
        rows=rows,
        notes=[
            "remapping (related work) improves per-report utility but does "
            "not defend the longitudinal attack — motivating the paper's "
            "permanent n-fold approach",
        ],
    )


def test_ablation_remap(benchmark, archive):
    report = benchmark.pedantic(_run, rounds=1, iterations=1)
    archive(report)
    raw, remapped = report.rows
    # Utility claim: remapping reduces mean per-report error.
    assert remapped["mean_report_error_m"] < raw["mean_report_error_m"]
    # Privacy claim: the attack still succeeds against remapped streams.
    assert remapped["attack_top1_error_m"] < 500.0
