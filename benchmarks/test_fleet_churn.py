"""Robustness bench: the serve workload under 10% churn vs no faults.

Runs the ``churn10`` builtin scenario against the standard fleet
workload next to its no-fault baseline, archives the
``BENCH_fleet.json`` payload the CI ``fleet-smoke`` job gates against,
and pins the acceptance criteria: churn may cost throughput (down
windows shed events) but the pin p99 must stay within 2x of the
baseline, with the budget audit bitwise clean.
"""

import json

from conftest import RESULTS_DIR

from repro.fleet import bench_fleet_payload, run_fleet

WORKLOAD = dict(
    n_users=50, n_events=2000, n_campaigns=200, seed=0, n_shards=2
)


def test_fleet_churn(benchmark, results_dir):
    baseline = run_fleet(None, **WORKLOAD)
    faulted = benchmark.pedantic(
        lambda: run_fleet("churn10", **WORKLOAD), rounds=1, iterations=1
    )
    payload = bench_fleet_payload(faulted, baseline)
    (results_dir / "BENCH_fleet.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    audit = faulted.audit
    assert audit.ok, audit
    ratio = payload["stage_seconds"]["pin_p99_ratio"]
    assert ratio <= 2.0, f"churn pin p99 blew past 2x baseline: {ratio:.3f}"
    # Churn sheds events instead of queueing them; it must never mint
    # extra responses or budget.
    assert faulted.processed <= baseline.processed
    assert audit.gauge_epsilon <= baseline.audit.gauge_epsilon
    # The scenario hash in the payload pins what was actually injected.
    assert payload["scale"]["scenario_hash"], payload["scale"]


def test_fleet_churn_matches_committed_shape():
    committed = json.loads((RESULTS_DIR / "BENCH_fleet.json").read_text())
    assert committed["experiment_id"] == "fleet"
    assert committed["stage_seconds"]["pin_p99_ratio"] <= 2.0
    assert "audit_ok=True" in committed["notes"]
