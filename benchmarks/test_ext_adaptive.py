"""Bench: risk-adaptive LPPM selection (extension experiment)."""

from conftest import BENCH

from repro.experiments import ext_adaptive


def test_ext_adaptive(benchmark, archive):
    report = benchmark.pedantic(
        ext_adaptive.run, args=(BENCH,), rounds=1, iterations=1
    )
    archive(report)
    by_policy = {r["policy"]: r for r in report.rows}
    onetime = by_policy["all one-time"]
    adaptive = by_policy["adaptive"]
    permanent = by_policy["all permanent"]

    # Privacy ordering: adaptive sits at (or near) the permanent policy,
    # far below the broken all-one-time deployment.
    assert onetime["attack_top1_within_200m"] >= 0.6
    assert adaptive["attack_top1_within_200m"] <= 0.3
    assert permanent["attack_top1_within_200m"] <= 0.1

    # Utility ordering: adaptive costs no more than all-permanent.
    assert adaptive["mean_report_error_m"] <= permanent["mean_report_error_m"] * 1.05
    assert onetime["mean_report_error_m"] <= adaptive["mean_report_error_m"]

    # The assessor actually differentiates users.
    assert 0 < adaptive["permanent_users"] <= len_users(report)


def len_users(report):
    return max(r["permanent_users"] for r in report.rows)
