"""Bench: edge serve-path latency under load (extension of Tables II-III).

Measures this host's real per-selection cost, then sweeps Poisson arrival
rates through the discrete-event queue model to report response-time
percentiles, and checks the RTB matching deadline (~100 ms, the figure the
paper cites for the ad-matching time limit) holds up to a substantial
request rate on a 4-worker edge.
"""

from repro.experiments.tables import ExperimentReport
from repro.sim.latency import (
    RTB_DEADLINE_S,
    latency_sweep,
    measure_selection_service_time,
)

ARRIVAL_RATES = (50.0, 200.0, 800.0, 3_200.0, 12_800.0)


def _run() -> ExperimentReport:
    service_median = measure_selection_service_time(samples=1_000)
    points = latency_sweep(
        arrival_rates=ARRIVAL_RATES,
        service_median_s=service_median,
        n_workers=4,
        n_requests=20_000,
    )
    rows = [
        {
            "arrival_rate_rps": p.arrival_rate,
            "utilization": p.stats.utilization,
            "p50_ms": p.stats.p50_response * 1_000,
            "p99_ms": p.stats.p99_response * 1_000,
            "meets_100ms_p99": p.meets_rtb_deadline,
        }
        for p in points
    ]
    return ExperimentReport(
        experiment_id="edge_latency",
        title="edge serve-path latency vs load (measured service cost)",
        rows=rows,
        notes=[
            f"measured median selection cost: {service_median * 1e6:.1f} us "
            "+ 2 ms simulated network floor",
            f"RTB deadline checked: {RTB_DEADLINE_S * 1_000:.0f} ms at p99 "
            "(paper Section II-A)",
        ],
    )


def test_edge_latency(benchmark, archive):
    report = benchmark.pedantic(_run, rounds=1, iterations=1)
    archive(report)
    rows = {r["arrival_rate_rps"]: r for r in report.rows}
    # Light and moderate loads comfortably meet the RTB deadline.
    assert rows[50.0]["meets_100ms_p99"]
    assert rows[200.0]["meets_100ms_p99"]
    # Latency is monotone (weakly) in load.
    p99s = [rows[r]["p99_ms"] for r in ARRIVAL_RATES]
    assert p99s[-1] >= p99s[0]
