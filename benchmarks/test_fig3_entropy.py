"""Bench: regenerate Figure 3 (location entropy vs number of check-ins)."""

from conftest import BENCH

from repro.experiments import fig3_entropy


def test_fig3_entropy(benchmark, archive):
    report = benchmark.pedantic(
        fig3_entropy.run, args=(BENCH,), rounds=1, iterations=1
    )
    archive(report)
    populated = [r for r in report.rows if r["users"] > 0]
    # Paper shape: entropy declines as check-ins grow.
    assert populated[0]["mean_entropy"] > populated[-1]["mean_entropy"]
    # Paper statistic: most users below entropy 2 (88.8% at full scale).
    frac_note = next(n for n in report.notes if "entropy < 2" in n)
    frac = float(frac_note.split(":")[1].split("(")[0])
    assert frac > 0.7
