"""Ablation bench: grid discretization does not stop the longitudinal attack.

Deployments often hope that snapping reported coordinates to a coarse grid
"anonymises" them.  This bench runs the de-obfuscation attack against the
discretized/truncated planar Laplace mechanism across grid steps and shows
the attack degrades only marginally until the grid is far coarser than the
attack threshold itself.
"""

import math

import numpy as np

from repro.attack.deobfuscation import DeobfuscationAttack
from repro.core.discretization import TruncatedDiscreteLaplaceMechanism
from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.mechanism import default_rng
from repro.core.params import OneTimeBudget
from repro.datagen.casestudy import make_fig4_user
from repro.datagen.obfuscate import one_time_obfuscate
from repro.experiments.tables import ExperimentReport

GRID_STEPS = (10.0, 50.0, 100.0, 250.0)


def _run() -> ExperimentReport:
    user = make_fig4_user()
    home = user.true_tops[0]
    epsilon = math.log(2) / 200.0
    rows = []

    continuous = PlanarLaplaceMechanism(OneTimeBudget(epsilon), rng=default_rng(1))
    observed = one_time_obfuscate(user.trace, continuous)
    attack = DeobfuscationAttack.against(continuous)
    guess = attack.infer_top1(observed)
    rows.append(
        {
            "grid_step_m": 0.0,
            "attack_top1_error_m": guess.distance_to(home),
        }
    )

    for step in GRID_STEPS:
        mech = TruncatedDiscreteLaplaceMechanism(
            OneTimeBudget(epsilon), grid_step=step, rng=default_rng(1)
        )
        observed = one_time_obfuscate(user.trace, mech)
        attack = DeobfuscationAttack.against(mech)
        guess = attack.infer_top1(observed)
        rows.append(
            {
                "grid_step_m": step,
                "attack_top1_error_m": (
                    guess.distance_to(home) if guess else float("inf")
                ),
            }
        )
    return ExperimentReport(
        experiment_id="ablation_discretization",
        title="attack error vs reporting grid step (one-time geo-IND)",
        rows=rows,
        notes=[
            "coordinate quantisation is not a longitudinal defense: the "
            "cluster mean still converges (grid bias stays below step/2)",
        ],
    )


def test_ablation_discretization(benchmark, archive):
    report = benchmark.pedantic(_run, rounds=1, iterations=1)
    archive(report)
    errors = {r["grid_step_m"]: r["attack_top1_error_m"] for r in report.rows}
    # Even at a 100 m reporting grid the attack stays within 200 m.
    assert errors[100.0] < 200.0
    # And the error grows at most on the order of the grid step.
    assert errors[250.0] < errors[0.0] + 300.0
